"""The cluster coordinator: publish shards, watch leases, collect results.

:class:`ClusterExecutor` implements the runtime's ``Executor`` protocol
(``map_shards(specs) -> Iterator[ShardReport]``), which is the whole
integration trick: :func:`repro.runtime.runner.execute_job` keeps doing
what it always does -- plan shards, subtract what the content-addressed
run store already holds, merge deterministically -- and only the *missing*
shards ever reach the queue.  Crash-resumability therefore composes from
two independent layers: the run store resumes across coordinator
restarts (re-running a killed campaign republishes only the still-missing
shards), and the lease protocol resumes within a run (a killed worker's
shards are re-claimed by survivors).  Byte-identity of the merged report
is inherited, not re-proven: the queue yields the same ``ShardReport``
values a serial executor would compute.  The store side is equally
backend-agnostic: the coordinating ``execute_job`` appends fresh shards
to whatever :class:`repro.runtime.store.StoreBackend` the run resolved
-- JSONL files or the shared SQLite warehouse -- so cluster runs publish
into the same warehouse serial and pool runs do.

The coordinator itself holds a lease (``coordinator.lease``).  A second
coordinator pointed at the same run directory refuses to start while
that lease is live, and *adopts* the run -- takeover -- once it expires:
republish (idempotent), reap, resume collecting.  Workers never need the
coordinator alive; it is a convenience that spawns local workers, reaps
expired leases centrally, and turns files appearing on disk back into an
iterator of reports.
"""

from __future__ import annotations

# repro: allow-file(REP001) -- stall detection, lease reaping and worker
# wait deadlines are wall-clock decisions by design; the canonical merge
# is delegated to runtime.runner and never sees these clocks.

import os
import subprocess
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.cluster.files import acquire_lease, read_lease, release_lease, renew_lease
from repro.cluster.heartbeat import HeartbeatFile, default_node_id, live_nodes
from repro.cluster.queue import (
    DEFAULT_CLUSTER_ROOT,
    ClusterError,
    ShardQueue,
    ShardTask,
)
from repro.cluster.worker import DEFAULT_TTL, worker_command
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.report import ShardReport
from repro.runtime.spec import JobSpec


@dataclass(frozen=True)
class ClusterConfig:
    """How a cluster run is laid out and paced.

    ``workers`` local worker processes are spawned per run (0 means
    none -- external workers, started by hand or on other hosts against
    the same ``root``, do all the executing).  ``run_id=None`` derives a
    fresh id per sweep from the sweep key; pin it only to adopt or join
    one specific run.  ``ttl`` is the lease time-to-live -- the failure
    detection horizon: a killed worker's shards come back after at most
    ``ttl`` seconds.  ``stall_timeout`` bounds how long the coordinator
    tolerates *zero progress* while no live worker exists (``None``
    waits forever, for externally-staffed runs).
    """

    workers: int = 2
    root: "str | None" = None
    run_id: "str | None" = None
    ttl: float = DEFAULT_TTL
    poll: float = 0.1
    stall_timeout: "float | None" = None
    node: "str | None" = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if self.poll <= 0:
            raise ValueError(f"poll must be positive, got {self.poll}")


class ClusterExecutor:
    """Drive shard specs through a filesystem work queue.

    Satisfies the :class:`repro.runtime.executor.Executor` protocol, so
    it drops into :meth:`Scenario.run`, :class:`Campaign` and
    ``execute_job`` wherever a process pool would go.  One
    ``map_shards`` call is one published run; with ``run_id=None`` each
    sweep gets its own run directory, so a single executor instance can
    serve a whole campaign.
    """

    def __init__(
        self,
        config: "ClusterConfig | None" = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.config = config if config is not None else ClusterConfig()
        self.telemetry = telemetry
        self.node = (
            self.config.node
            if self.config.node is not None
            else default_node_id("coordinator")
        )
        self.root = Path(
            self.config.root if self.config.root is not None else DEFAULT_CLUSTER_ROOT
        )
        #: The directory of the most recently published run (CLI surfaces
        #: report/status paths from it after a run completes).
        self.run_dir: "Path | None" = None
        self.run_id: "str | None" = None
        #: Recorded in ``job.json`` as the plan hint an adopting
        #: coordinator defaults its ``--shards`` to (the runner owns the
        #: actual plan; the executor only sees the missing shards).
        self.publish_shard_count: "int | None" = None
        #: Display-name hint recorded alongside it (``run_job``'s
        #: ``graph_name``), purely so adopted rows label identically.
        self.publish_graph_name: "str | None" = None
        self._procs: "list[subprocess.Popen]" = []
        self._queue: "ShardQueue | None" = None

    # -- protocol attribute (parallels Serial/ParallelExecutor.workers)
    @property
    def workers(self) -> int:
        return self.config.workers

    # ------------------------------------------------------------------
    # Executor protocol
    # ------------------------------------------------------------------

    def map_shards(self, specs: Sequence[JobSpec]) -> Iterator[ShardReport]:
        specs = list(specs)
        if not specs:
            return
        sweep = specs[0].sweep_spec()
        tasks = []
        for spec in specs:
            if spec.shard is None:
                raise ClusterError(
                    "cluster execution needs sharded specs; got a sweep spec"
                )
            if spec.sweep_spec().key() != sweep.key():
                raise ClusterError(
                    "one map_shards call must carry shards of one sweep; "
                    f"got {spec.sweep_spec().key()[:12]} alongside "
                    f"{sweep.key()[:12]}"
                )
            tasks.append(ShardTask(spec.shard[0], spec.shard[1]))

        run_id = (
            self.config.run_id
            if self.config.run_id is not None
            else f"{sweep.key()[:12]}-{uuid.uuid4().hex[:8]}"
        )
        queue = ShardQueue(self.root / run_id)
        self.run_dir, self.run_id, self._queue = queue.run_dir, run_id, queue
        self._acquire_coordination(queue)
        created = queue.publish(
            sweep,
            [task.bounds for task in tasks],
            shard_count=self.publish_shard_count,
            graph_name=self.publish_graph_name,
        )
        self.telemetry.event(
            "cluster.published",
            run_id=run_id,
            shards=len(tasks),
            new=created,
            workers=self.config.workers,
        )
        heartbeat = HeartbeatFile(
            queue.heartbeats_dir / f"{self.node}.jsonl", self.node, "coordinator"
        )
        heartbeat.event("node.start", run_id=run_id)
        self._spawn_workers(run_id)
        try:
            yield from self._collect(queue, tasks, heartbeat)
            heartbeat.event("node.exit")
        finally:
            heartbeat.close()
            self._finish_run(queue)

    def _collect(
        self,
        queue: ShardQueue,
        tasks: "list[ShardTask]",
        heartbeat: HeartbeatFile,
    ) -> Iterator[ShardReport]:
        pending = {task: True for task in tasks}  # insertion-ordered set
        last_progress = time.monotonic()
        while pending:
            lease = renew_lease(
                queue.coordinator_lease_path, self.node, self.config.ttl
            )
            if lease is None:
                # Expired and possibly adopted while we stalled; the run
                # still completes (results are append-only), so keep
                # collecting, but say so loudly.
                self.telemetry.warn(
                    f"coordinator lease lost on run {self.run_id}"
                )
                acquire_lease(
                    queue.coordinator_lease_path, self.node, self.config.ttl
                )
            for task, stale in queue.reap_expired():
                self.telemetry.event(
                    "shard.requeued",
                    lo=task.lo,
                    hi=task.hi,
                    owner=stale.owner,
                )
                heartbeat.event(
                    "shard.requeued", shard=task.ident, owner=stale.owner
                )
            progressed = False
            for task in list(pending):
                report = queue.result(task)
                if report is not None:
                    del pending[task]
                    progressed = True
                    yield report
            if progressed:
                last_progress = time.monotonic()
                heartbeat.beat("collecting")
            if not pending:
                return
            self._reap_local_workers()
            self._check_liveness(queue, pending, last_progress)
            time.sleep(self.config.poll)

    # ------------------------------------------------------------------
    # Coordinator lease / takeover
    # ------------------------------------------------------------------

    def _acquire_coordination(self, queue: ShardQueue) -> None:
        path = queue.coordinator_lease_path
        previous = read_lease(path)
        lease = acquire_lease(path, self.node, self.config.ttl)
        if lease is None:
            current = read_lease(path)
            owner = current.owner if current is not None else "unknown"
            raise ClusterError(
                f"run {queue.run_dir} already has a live coordinator "
                f"({owner}); wait for its lease to expire (ttl "
                f"{self.config.ttl:.0f}s) or use a different --run-id"
            )
        if previous is not None and previous.owner != self.node:
            self.telemetry.event(
                "coordinator.takeover",
                run_id=queue.run_dir.name,
                previous=previous.owner,
            )

    # ------------------------------------------------------------------
    # Local worker processes
    # ------------------------------------------------------------------

    def _spawn_workers(self, run_id: str) -> None:
        if self.config.workers <= 0:
            return
        import repro

        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for index in range(self.config.workers):
            argv = worker_command(
                self.root,
                run_id,
                node=f"{self.node}-w{index}",
                ttl=self.config.ttl,
                poll=self.config.poll,
            )
            self._procs.append(
                subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)
            )

    def _reap_local_workers(self) -> None:
        for proc in self._procs:
            proc.poll()

    def _check_liveness(
        self,
        queue: ShardQueue,
        pending: "Mapping[ShardTask, Any]",
        last_progress: float,
    ) -> None:
        stalled_for = time.monotonic() - last_progress
        if (
            self.config.stall_timeout is not None
            and stalled_for > self.config.stall_timeout
        ):
            raise ClusterError(
                f"no shard completed for {stalled_for:.0f}s on run "
                f"{self.run_id} ({len(pending)} shards pending); "
                f"{self._resume_hint()}"
            )
        if self.config.workers <= 0:
            return  # externally staffed: workers may join at any time
        if any(proc.returncode is None for proc in self._procs):
            return
        # Every local worker is dead.  Give leases and heartbeats one TTL
        # of grace before declaring the run stranded: external workers
        # or duplicate executions may still be in flight.
        now = queue.clock()
        if any(
            (lease := queue.lease_of(task)) is not None
            and not lease.expired(now)
            for task in pending
        ):
            return
        if live_nodes(queue.heartbeats_dir, self.config.ttl * 2):
            return
        if stalled_for < self.config.ttl * 2:
            return
        remaining = ", ".join(str(task) for task in list(pending)[:4])
        more = len(pending) - min(len(pending), 4)
        raise ClusterError(
            f"all workers of run {self.run_id} died with {len(pending)} "
            f"shards unfinished ({remaining}{f' and {more} more' if more else ''}); "
            f"{self._resume_hint()}"
        )

    def _resume_hint(self) -> str:
        return (
            f"completed shards are preserved -- resume with "
            f"`python -m repro cluster coordinator --run-id {self.run_id}` "
            f"or add workers with `python -m repro cluster worker "
            f"--run-id {self.run_id}`"
        )

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _finish_run(self, queue: ShardQueue) -> None:
        self._terminate_workers()
        release_lease(queue.coordinator_lease_path, self.node)

    def _terminate_workers(self) -> None:
        for proc in self._procs:
            if proc.returncode is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            if proc.returncode is None:
                try:
                    proc.wait(timeout=max(0.0, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self._procs = []

    def close(self) -> None:
        """Terminate local workers and drop the coordinator lease."""
        self._terminate_workers()
        if self._queue is not None:
            release_lease(self._queue.coordinator_lease_path, self.node)

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ClusterExecutor(workers={self.config.workers}, "
            f"root={str(self.root)!r}, run_id={self.config.run_id!r})"
        )


def resolve_cluster(
    cluster: Any, telemetry: Telemetry = NULL_TELEMETRY
) -> "ClusterExecutor | None":
    """Map :meth:`Scenario.run`'s ``cluster`` argument to an executor.

    ``None``/``False`` disable cluster execution; ``True`` uses the
    default :class:`ClusterConfig`; an ``int`` is a local worker count; a
    mapping holds :class:`ClusterConfig` fields; a config or an executor
    pass through.  Executors built *here* are owned by the caller that
    resolved them (and must be closed); a passed-in executor stays open.
    """
    if cluster is None or cluster is False:
        return None
    if cluster is True:
        return ClusterExecutor(ClusterConfig(), telemetry=telemetry)
    if isinstance(cluster, bool):  # pragma: no cover - exhausted above
        return None
    if isinstance(cluster, int):
        return ClusterExecutor(ClusterConfig(workers=cluster), telemetry=telemetry)
    if isinstance(cluster, Mapping):
        return ClusterExecutor(ClusterConfig(**cluster), telemetry=telemetry)
    if isinstance(cluster, ClusterConfig):
        return ClusterExecutor(cluster, telemetry=telemetry)
    if isinstance(cluster, ClusterExecutor):
        if cluster.telemetry is NULL_TELEMETRY:
            cluster.telemetry = telemetry
        return cluster
    raise TypeError(
        f"cluster must be None/bool/int/dict/ClusterConfig/ClusterExecutor, "
        f"got {type(cluster).__name__}"
    )


__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterExecutor",
    "resolve_cluster",
]
