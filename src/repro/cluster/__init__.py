"""Fault-tolerant distributed execution of sweep shards.

The cluster subsystem scales the runtime's sharded sweeps past one
process pool without giving up the repository's core invariant: the
merged report of any cluster run -- any worker count, any kill/restart
schedule -- is byte-identical to the serial enumeration.

It is a filesystem protocol, not a network one.  A *coordinator*
publishes a sweep's planned shards as files in a shared run directory
(:mod:`~repro.cluster.queue`); *workers* claim shards with lease files
(:mod:`~repro.cluster.files`), execute them through the same
``run_shard`` every other executor uses, and write reports back
atomically; heartbeat files in the telemetry event schema
(:mod:`~repro.cluster.heartbeat`) make liveness observable.  Killed
workers lose only their leases -- which expire and are re-claimed; a
killed coordinator loses nothing -- a new one adopts the run directory
via lease takeover (:mod:`~repro.cluster.coordinator`), and re-running a
campaign resumes through the content-addressed run store exactly as a
local rerun would.

Entry points: ``Scenario.run(cluster=...)`` / ``Campaign(cluster=...)``
in-process, ``python -m repro cluster {run,coordinator,worker,status}``
on the command line.
"""

from repro.cluster.coordinator import (
    ClusterConfig,
    ClusterExecutor,
    resolve_cluster,
)
from repro.cluster.files import (
    Lease,
    acquire_lease,
    read_lease,
    release_lease,
    renew_lease,
)
from repro.cluster.heartbeat import (
    HeartbeatFile,
    NodeStatus,
    default_node_id,
    live_nodes,
    read_heartbeats,
)
from repro.cluster.queue import (
    DEFAULT_CLUSTER_ROOT,
    ClusterError,
    ShardQueue,
    ShardTask,
)
from repro.cluster.status import cluster_status, render_status, run_status
from repro.cluster.worker import (
    DEFAULT_TTL,
    FAULT_ENV,
    FAULT_POINTS,
    WorkerConfig,
    work,
)

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterExecutor",
    "DEFAULT_CLUSTER_ROOT",
    "DEFAULT_TTL",
    "FAULT_ENV",
    "FAULT_POINTS",
    "HeartbeatFile",
    "Lease",
    "NodeStatus",
    "ShardQueue",
    "ShardTask",
    "WorkerConfig",
    "acquire_lease",
    "cluster_status",
    "default_node_id",
    "live_nodes",
    "read_heartbeats",
    "read_lease",
    "release_lease",
    "render_status",
    "renew_lease",
    "resolve_cluster",
    "run_status",
    "work",
]
