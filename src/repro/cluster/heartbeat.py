"""Heartbeat files: per-node liveness streams in the telemetry schema.

Every cluster node (workers and the coordinator alike) appends to its
own ``heartbeats/<node>.jsonl``, one JSON event per line, valid under
:func:`repro.obs.events.validate_events`: a ``meta`` header first, then
flat ``event``/``warning`` records -- never spans, so a stream cut short
by ``SIGKILL`` is still schema-valid (there is nothing to leave open).

Two clocks appear deliberately.  The schema's ``ts`` is seconds since
the node started (``time.perf_counter``, monotonic, matching every other
telemetry stream in the repository); liveness decisions instead use the
wall-clock ``wall`` attribute stamped on every record, because liveness
is a *cross-process* question and monotonic clocks do not compare across
processes.  A node is presumed dead when ``now - last wall`` exceeds the
lease TTL -- the same tolerance the lease protocol already grants clock
skew.

Event names (all carrying ``node``/``role``/``wall`` attrs):

* ``node.start`` / ``node.exit`` -- lifecycle brackets
* ``node.heartbeat`` -- the periodic pulse (``state`` says what the node
  is doing; ``shard`` the current claim, if any)
* ``shard.claimed`` / ``shard.done`` -- claim lifecycle markers
"""

from __future__ import annotations

# repro: allow-file(REP001) -- heartbeats are liveness telemetry: their
# whole payload is clock readings (monotonic ts + wall for cross-node
# staleness), and nothing here feeds canonical report bytes.

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.obs.telemetry import SCHEMA_VERSION


def default_node_id(prefix: str = "node") -> str:
    """A node identity unique across hosts and restarts: host + pid."""
    host = socket.gethostname().split(".")[0] or "host"
    return f"{prefix}-{host}-{os.getpid()}"


class HeartbeatFile:
    """One node's append-only telemetry stream (thread-safe).

    The lease-keeper thread beats while the main thread claims and
    executes, so emission is lock-guarded -- unlike
    :class:`~repro.obs.telemetry.Telemetry`, which is single-threaded by
    design and therefore not used directly here.
    """

    def __init__(self, path: "str | Path", node: str, role: str):
        self.path = Path(path)
        self.node = node
        self.role = role
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # repro: allow(REP010): a heartbeat is a long-lived append-only
        # JSONL *stream*, not a document -- atomic replace cannot apply
        # to a handle held open for the node's lifetime, and readers
        # (read_heartbeat) already tolerate a torn trailing line.
        self._handle = open(self.path, "w", encoding="utf-8")
        self._emit({"ev": "meta", "schema": SCHEMA_VERSION,
                    "library": _library_version()})

    def _emit(self, fields: "dict[str, Any]") -> None:
        event = {"ev": fields.pop("ev"),
                 "ts": round(time.perf_counter() - self._epoch, 6)}
        event.update(fields)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            self._handle.flush()

    def _attrs(self, extra: "dict[str, Any]") -> "dict[str, Any]":
        attrs = {"node": self.node, "role": self.role,
                 "wall": round(time.time(), 3)}
        attrs.update({k: v for k, v in extra.items() if v is not None})
        return attrs

    def event(self, name: str, **attrs: Any) -> None:
        self._emit({"ev": "event", "name": name, "attrs": self._attrs(attrs)})

    def beat(self, state: str, shard: "str | None" = None) -> None:
        self.event("node.heartbeat", state=state, shard=shard)

    def warn(self, message: str, **attrs: Any) -> None:
        self._emit({"ev": "warning", "message": message,
                    "attrs": self._attrs(attrs)})

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "HeartbeatFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _library_version() -> str:
    from repro import __version__

    return __version__


@dataclass(frozen=True)
class NodeStatus:
    """What one heartbeat file says about its node."""

    node: str
    role: str
    state: str
    last_wall: float
    shard: "str | None"
    events: int

    def age(self, now: "float | None" = None) -> float:
        """Seconds since the node last wrote anything (wall clock)."""
        return (now if now is not None else time.time()) - self.last_wall

    def alive(self, ttl: float, now: "float | None" = None) -> bool:
        return self.age(now) < ttl

    def to_dict(self) -> "dict[str, Any]":
        return {
            "node": self.node,
            "role": self.role,
            "state": self.state,
            "last_wall": self.last_wall,
            "shard": self.shard,
            "events": self.events,
        }


def _iter_events(path: Path) -> Iterator["dict[str, Any]"]:
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line of a killed node
                if isinstance(event, dict):
                    yield event
    except (FileNotFoundError, NotADirectoryError):
        return


def read_node_status(path: "str | Path") -> "NodeStatus | None":
    """Fold one heartbeat file into its node's latest state."""
    path = Path(path)
    node = path.stem
    role = "worker"
    state = "unknown"
    shard: "str | None" = None
    last_wall = 0.0
    count = 0
    for event in _iter_events(path):
        count += 1
        attrs = event.get("attrs")
        if not isinstance(attrs, dict):
            continue
        wall = attrs.get("wall")
        if isinstance(wall, (int, float)):
            last_wall = max(last_wall, float(wall))
        node = str(attrs.get("node", node))
        role = str(attrs.get("role", role))
        name = event.get("name")
        if name == "node.exit":
            state, shard = "exited", None
        elif name in ("node.start", "node.heartbeat"):
            state = str(attrs.get("state", "running"))
            shard = attrs.get("shard")
        elif name == "shard.claimed":
            state, shard = "executing", attrs.get("shard")
        elif name == "shard.done":
            state, shard = "idle", None
    if count == 0:
        return None
    return NodeStatus(node=node, role=role, state=state,
                      last_wall=last_wall, shard=shard, events=count)


def read_heartbeats(heartbeats_dir: "str | Path") -> "list[NodeStatus]":
    """Latest state of every node that ever heartbeat under a run."""
    directory = Path(heartbeats_dir)
    try:
        paths = sorted(directory.glob("*.jsonl"))
    except (FileNotFoundError, NotADirectoryError):
        return []
    statuses = []
    for path in paths:
        status = read_node_status(path)
        if status is not None:
            statuses.append(status)
    return statuses


def live_nodes(
    heartbeats_dir: "str | Path", ttl: float, now: "float | None" = None
) -> "list[NodeStatus]":
    """Nodes whose last write is fresher than ``ttl`` and not an exit."""
    return [
        status
        for status in read_heartbeats(heartbeats_dir)
        if status.state != "exited" and status.alive(ttl, now)
    ]


__all__ = [
    "HeartbeatFile",
    "NodeStatus",
    "default_node_id",
    "live_nodes",
    "read_heartbeats",
    "read_node_status",
]
