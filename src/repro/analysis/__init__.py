"""Analysis tooling: tables, tradeoff curves and ASCII plots.

These are the building blocks of the experiment renderers in
:mod:`repro.experiments`: each experiment sweeps a parameter grid with
the adversary (through :mod:`repro.api`), renders a plain-text table of
measured-vs-paper columns, and (for curve-shaped claims) an ASCII
scatter plot.  Worst-case sweeps themselves live in :mod:`repro.api`
(:func:`repro.api.sweep_objects` for live objects,
:meth:`repro.api.Scenario.run` for named scenarios); the deprecated
``worst_case_sweep*`` shims that used to forward there from this package
have been removed.
"""

from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.memory import MemoryProfile, counter_bits, dfs_walk_bits, map_bits
from repro.analysis.tables import Table, format_ratio
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_points
from repro.api import SweepRow

__all__ = [
    "MemoryProfile",
    "SweepRow",
    "Table",
    "TradeoffPoint",
    "counter_bits",
    "dfs_walk_bits",
    "format_ratio",
    "map_bits",
    "scatter_plot",
    "tradeoff_points",
]
