"""Analysis tooling: sweeps, tables, tradeoff curves and ASCII plots.

These are the building blocks of the benchmark harness under
``benchmarks/``: each experiment sweeps a parameter grid with the
adversary, renders a plain-text table of measured-vs-paper columns, and
(for curve-shaped claims) an ASCII scatter plot.
"""

from repro.analysis.tables import Table, format_ratio
from repro.analysis.sweep import SweepRow, worst_case_sweep, worst_case_sweep_runtime
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_points
from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.memory import MemoryProfile, counter_bits, dfs_walk_bits, map_bits

__all__ = [
    "MemoryProfile",
    "SweepRow",
    "Table",
    "TradeoffPoint",
    "counter_bits",
    "dfs_walk_bits",
    "format_ratio",
    "map_bits",
    "scatter_plot",
    "tradeoff_points",
    "worst_case_sweep",
    "worst_case_sweep_runtime",
]
