"""ASCII space-time diagrams of ring executions.

Renders a two-agent execution on an oriented ring as a grid: columns are
ring nodes, rows are time points, each agent is a letter, a meeting is
``*``.  Purpose-built for examples, teaching and debugging worst-case
configurations that the adversary reports.
"""

from __future__ import annotations

from repro.sim.metrics import RendezvousResult


def render_timeline(
    result: RendezvousResult,
    ring_size: int,
    max_rows: int = 40,
    markers: str = "AB",
) -> str:
    """Render the recorded traces as a space-time grid.

    Rows are sampled evenly if the execution is longer than ``max_rows``.
    Only meaningful for runs recorded on an oriented ring of ``ring_size``
    nodes (positions index the columns directly).
    """
    if len(result.traces) > len(markers):
        raise ValueError(
            f"got {len(result.traces)} traces but only {len(markers)} markers"
        )
    horizon = max(len(trace.positions) for trace in result.traces)
    if result.met and result.time is not None:
        horizon = min(horizon, result.time + 1)

    time_points = list(range(horizon))
    if len(time_points) > max_rows:
        stride = -(-len(time_points) // max_rows)
        sampled = time_points[::stride]
        if time_points[-1] not in sampled:
            sampled.append(time_points[-1])
        time_points = sampled

    width = len(str(horizon))
    lines = [f"{'t':>{width}} |" + "".join(str(n % 10) for n in range(ring_size))]
    lines.append("-" * (width + 2 + ring_size))
    for t in time_points:
        row = [" "] * ring_size
        occupied: dict[int, int] = {}
        for index, trace in enumerate(result.traces):
            position = trace.positions[min(t, len(trace.positions) - 1)]
            if position in occupied:
                row[position] = "*"
            else:
                row[position] = markers[index]
                occupied[position] = index
        lines.append(f"{t:>{width}} |" + "".join(row))
    if result.met:
        lines.append(
            f"meeting at node {result.meeting_node}, time {result.time} (*)"
        )
    return "\n".join(lines)
