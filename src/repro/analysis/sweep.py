"""Worst-case sweeps: the workhorse behind every benchmark table.

A sweep takes an algorithm instance and a graph, runs the adversary over
labels x starts x delays, and produces a :class:`SweepRow` holding the
measured worst time/cost next to the paper's bounds and the argmax
configurations (so every reported number can be replayed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.adversary import (
    Configuration,
    all_label_pairs,
    configurations,
    worst_case_search,
)


@dataclass(frozen=True)
class SweepRow:
    """One sweep result: measured extremes vs. declared bounds."""

    algorithm: str
    graph: str
    num_nodes: int
    exploration_budget: int
    label_space: int
    max_time: int
    time_bound: int
    max_cost: int
    cost_bound: int
    executions: int
    worst_time_config: Configuration
    worst_cost_config: Configuration

    @property
    def time_within_bound(self) -> bool:
        return self.max_time <= self.time_bound

    @property
    def cost_within_bound(self) -> bool:
        return self.max_cost <= self.cost_bound


def worst_case_sweep(
    algorithm: RendezvousAlgorithm,
    graph: PortLabeledGraph,
    graph_name: str,
    delays: Sequence[int] = (0,),
    label_pairs: Iterable[tuple[int, int]] | None = None,
    fix_first_start: bool = False,
    sample: int | None = None,
) -> SweepRow:
    """Adversarial worst-case search for one (algorithm, graph) cell.

    ``fix_first_start=True`` is only sound on vertex-transitive graphs;
    callers assert that themselves.  Simultaneous-start-only algorithms
    reject non-zero delays loudly rather than producing invalid rows.
    """
    if algorithm.requires_simultaneous_start and any(d != 0 for d in delays):
        raise ValueError(
            f"{algorithm.name} requires simultaneous start; delays {delays} invalid"
        )
    if label_pairs is None:
        label_pairs = all_label_pairs(algorithm.label_space)

    def horizon(config: Configuration) -> int:
        return config.delay + max(
            algorithm.schedule_length(config.labels[0]),
            algorithm.schedule_length(config.labels[1]),
        )

    report = worst_case_search(
        graph,
        algorithm,
        configurations(
            graph,
            label_pairs,
            delays=delays,
            fix_first_start=fix_first_start,
        ),
        max_rounds=horizon,
        sample=sample,
    )
    if report.failures:
        first = report.failures[0]
        raise AssertionError(
            f"{algorithm.name} failed to meet in {len(report.failures)} "
            f"configurations, e.g. labels={first.labels} starts={first.starts} "
            f"delay={first.delay}"
        )
    assert report.worst_time is not None and report.worst_cost is not None
    return SweepRow(
        algorithm=algorithm.name,
        graph=graph_name,
        num_nodes=graph.num_nodes,
        exploration_budget=algorithm.exploration_budget,
        label_space=algorithm.label_space,
        max_time=report.max_time,
        time_bound=algorithm.time_bound(),
        max_cost=report.max_cost,
        cost_bound=algorithm.cost_bound(),
        executions=report.executions,
        worst_time_config=report.worst_time.config,
        worst_cost_config=report.worst_cost.config,
    )
