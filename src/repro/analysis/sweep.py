"""Worst-case sweeps -- deprecated veneer over :mod:`repro.api`.

Historically this module was the workhorse behind every benchmark table;
the implementation now lives in the declarative API layer.  The two old
entry points keep working for existing callers, with a
``DeprecationWarning`` pointing at their replacements:

* :func:`worst_case_sweep`   -> :func:`repro.api.sweep_objects` (live
  objects) or :meth:`repro.api.Scenario.run` (named scenarios);
* :func:`worst_case_sweep_runtime` -> :meth:`repro.api.Scenario.run`
  (or :func:`repro.api.run_job` for a raw :class:`JobSpec`).

:class:`SweepRow` itself moved to :mod:`repro.api` and is re-exported
here unchanged.  Code *inside* ``repro`` must call the API directly --
the CI smoke job fails on deprecation warnings originating in the
package.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from repro.api import SweepRow, run_job, sweep_objects
from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.runtime.executor import Executor
from repro.runtime.runner import RunStats
from repro.runtime.spec import JobSpec
from repro.runtime.store import RunStore

__all__ = ["SweepRow", "worst_case_sweep", "worst_case_sweep_runtime"]


def worst_case_sweep(
    algorithm: RendezvousAlgorithm,
    graph: PortLabeledGraph,
    graph_name: str,
    delays: Sequence[int] = (0,),
    label_pairs: Iterable[tuple[int, int]] | None = None,
    fix_first_start: bool = False,
    sample: int | None = None,
) -> SweepRow:
    """Deprecated: use :func:`repro.api.sweep_objects` (same signature)
    or, for registry-named scenarios, :meth:`repro.api.Scenario.run`."""
    warnings.warn(
        "worst_case_sweep is deprecated; use repro.api.sweep_objects for live "
        "objects or repro.api.Scenario.run() for named scenarios",
        DeprecationWarning,
        stacklevel=2,
    )
    return sweep_objects(
        algorithm,
        graph,
        graph_name,
        delays=delays,
        label_pairs=label_pairs,
        fix_first_start=fix_first_start,
        sample=sample,
    )


def worst_case_sweep_runtime(
    spec: JobSpec,
    graph_name: str | None = None,
    executor: Executor | None = None,
    store: RunStore | None = None,
    shard_count: int | None = None,
    graph: PortLabeledGraph | None = None,
    algorithm: RendezvousAlgorithm | None = None,
) -> tuple[SweepRow, RunStats]:
    """Deprecated: use :meth:`repro.api.Scenario.run` (or
    :func:`repro.api.run_job` when you already hold a :class:`JobSpec`)."""
    warnings.warn(
        "worst_case_sweep_runtime is deprecated; use repro.api.Scenario.run() "
        "or repro.api.run_job()",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_job(
        spec,
        graph_name=graph_name,
        executor=executor,
        store=store,
        shard_count=shard_count,
        graph=graph,
        algorithm=algorithm,
    )
