"""Worst-case sweeps: the workhorse behind every benchmark table.

A sweep takes an algorithm instance and a graph, runs the adversary over
labels x starts x delays, and produces a :class:`SweepRow` holding the
measured worst time/cost next to the paper's bounds and the argmax
configurations (so every reported number can be replayed).

Two execution paths produce identical rows:

* :func:`worst_case_sweep` -- in-process, taking live objects; the
  original serial path, still used where the caller already holds an
  algorithm instance and the space is small;
* :func:`worst_case_sweep_runtime` -- spec-based, delegating to
  :mod:`repro.runtime`: the space is sharded, shards run on an executor
  (serial or a process pool) and completed shards are cached in the run
  store, so repeated sweeps and interrupted runs skip finished work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.runtime.executor import Executor
from repro.runtime.runner import RunStats, execute_job
from repro.runtime.spec import JobSpec
from repro.runtime.store import RunStore
from repro.sim.adversary import (
    Configuration,
    all_label_pairs,
    configurations,
    default_horizon,
    worst_case_search,
)


@dataclass(frozen=True)
class SweepRow:
    """One sweep result: measured extremes vs. declared bounds."""

    algorithm: str
    graph: str
    num_nodes: int
    exploration_budget: int
    label_space: int
    max_time: int
    time_bound: int
    max_cost: int
    cost_bound: int
    executions: int
    worst_time_config: Configuration
    worst_cost_config: Configuration

    @property
    def time_within_bound(self) -> bool:
        return self.max_time <= self.time_bound

    @property
    def cost_within_bound(self) -> bool:
        return self.max_cost <= self.cost_bound


def worst_case_sweep(
    algorithm: RendezvousAlgorithm,
    graph: PortLabeledGraph,
    graph_name: str,
    delays: Sequence[int] = (0,),
    label_pairs: Iterable[tuple[int, int]] | None = None,
    fix_first_start: bool = False,
    sample: int | None = None,
) -> SweepRow:
    """Adversarial worst-case search for one (algorithm, graph) cell.

    ``fix_first_start=True`` is only sound on vertex-transitive graphs;
    callers assert that themselves.  Simultaneous-start-only algorithms
    reject non-zero delays loudly rather than producing invalid rows.
    """
    if algorithm.requires_simultaneous_start and any(d != 0 for d in delays):
        raise ValueError(
            f"{algorithm.name} requires simultaneous start; delays {delays} invalid"
        )
    if label_pairs is None:
        label_pairs = all_label_pairs(algorithm.label_space)

    def horizon(config: Configuration) -> int:
        return default_horizon(algorithm, config)

    report = worst_case_search(
        graph,
        algorithm,
        configurations(
            graph,
            label_pairs,
            delays=delays,
            fix_first_start=fix_first_start,
        ),
        max_rounds=horizon,
        sample=sample,
    )
    return _row_from_report(algorithm, graph, graph_name, report)


def _row_from_report(algorithm, graph, graph_name, report) -> SweepRow:
    """Turn a worst-case report into a :class:`SweepRow`, or raise.

    Accepts both :class:`~repro.sim.adversary.WorstCaseReport` and
    :class:`~repro.runtime.report.MergedReport` (the shared shape: argmax
    records exposing ``.config``, plus ``failures`` and ``executions``), so
    the serial and runtime paths cannot drift apart.
    """
    if report.failures:
        first = report.failures[0]
        raise AssertionError(
            f"{algorithm.name} failed to meet in {len(report.failures)} "
            f"configurations, e.g. labels={first.labels} starts={first.starts} "
            f"delay={first.delay}"
        )
    if report.worst_time is None or report.worst_cost is None:
        raise ValueError("empty configuration space: nothing to sweep")
    return SweepRow(
        algorithm=algorithm.name,
        graph=graph_name,
        num_nodes=graph.num_nodes,
        exploration_budget=algorithm.exploration_budget,
        label_space=algorithm.label_space,
        max_time=report.max_time,
        time_bound=algorithm.time_bound(),
        max_cost=report.max_cost,
        cost_bound=algorithm.cost_bound(),
        executions=report.executions,
        worst_time_config=report.worst_time.config,
        worst_cost_config=report.worst_cost.config,
    )


def worst_case_sweep_runtime(
    spec: JobSpec,
    graph_name: str | None = None,
    executor: Executor | None = None,
    store: RunStore | None = None,
    shard_count: int | None = None,
    graph: PortLabeledGraph | None = None,
    algorithm: RendezvousAlgorithm | None = None,
) -> tuple[SweepRow, RunStats]:
    """Runtime-backed worst-case sweep: sharded, parallelisable, cached.

    Produces the same :class:`SweepRow` as :func:`worst_case_sweep` on the
    equivalent live objects (the merge tie-breaking guarantees identical
    argmax configurations), plus the :class:`~repro.runtime.runner.RunStats`
    describing how many shards came from the store.  ``graph`` and
    ``algorithm`` may be passed when the caller has already built them from
    the spec, to avoid rebuilding (they must match the spec).
    """
    graph = graph if graph is not None else spec.graph.build()
    algorithm = algorithm if algorithm is not None else spec.algorithm.build(graph)
    if algorithm.requires_simultaneous_start and any(d != 0 for d in spec.delays):
        raise ValueError(
            f"{algorithm.name} requires simultaneous start; "
            f"delays {spec.delays} invalid"
        )
    outcome = execute_job(
        spec, executor=executor, store=store, shard_count=shard_count, graph=graph
    )
    name = graph_name if graph_name is not None else spec.graph.label
    row = _row_from_report(algorithm, graph, name, outcome.report)
    return row, outcome.stats
