"""Assembling the time/cost tradeoff curve (EXP-08).

The paper's headline picture: Cheap sits at (cost ``Theta(E)``, time
``Theta(EL)``), Fast at (cost and time ``Theta(E log L)``), and
FastWithRelabeling(w) interpolates at (cost ``Theta(wE)``, time
``Theta(L^{1/w} E)``).  A :class:`TradeoffPoint` is one measured point of
that curve; :func:`tradeoff_points` sweeps a family of algorithms at a
fixed ``L`` on a fixed graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api import sweep_objects
from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph


@dataclass(frozen=True)
class TradeoffPoint:
    """One algorithm's measured worst-case position in the (cost, time) plane."""

    algorithm: str
    label_space: int
    exploration_budget: int
    max_cost: int
    max_time: int

    @property
    def cost_per_e(self) -> float:
        return self.max_cost / self.exploration_budget

    @property
    def time_per_e(self) -> float:
        return self.max_time / self.exploration_budget

    def to_dict(self) -> dict:
        """Canonical JSON form (the CLI's ``tradeoff --json`` rows)."""
        return {
            "algorithm": self.algorithm,
            "label_space": self.label_space,
            "exploration_budget": self.exploration_budget,
            "max_cost": self.max_cost,
            "max_time": self.max_time,
            "cost_per_e": self.cost_per_e,
            "time_per_e": self.time_per_e,
        }


def tradeoff_points(
    algorithms: Sequence[RendezvousAlgorithm],
    graph: PortLabeledGraph,
    graph_name: str,
    delays: Sequence[int] = (0,),
    fix_first_start: bool = True,
    sample: int | None = None,
    label_pairs: Sequence[tuple[int, int]] | None = None,
    engine: str = "auto",
) -> list[TradeoffPoint]:
    """Worst-case (cost, time) for each algorithm on the same instance.

    Simultaneous-start-only algorithms are swept with delay 0 regardless
    of ``delays`` (their schedules are only meaningful there).  At large
    ``L`` the exhaustive pair sweep is infeasible; pass ``label_pairs``
    with the adversarial pairs of interest instead.  ``engine`` is
    forwarded to :func:`repro.api.sweep_objects`; the default ``"auto"``
    runs each schedule-driven algorithm on the fastest available engine
    (batch, then compiled) instead of the reactive simulator, with
    identical points -- curve assembly over many algorithms is exactly
    the dense workload the batch engine accelerates.
    """
    points = []
    for algorithm in algorithms:
        algo_delays = (0,) if algorithm.requires_simultaneous_start else delays
        row = sweep_objects(
            algorithm,
            graph,
            graph_name,
            delays=algo_delays,
            fix_first_start=fix_first_start,
            sample=sample,
            label_pairs=label_pairs,
            engine=engine,
        )
        points.append(
            TradeoffPoint(
                algorithm=algorithm.name,
                label_space=algorithm.label_space,
                exploration_budget=algorithm.exploration_budget,
                max_cost=row.max_cost,
                max_time=row.max_time,
            )
        )
    return points
