"""Agent memory accounting (paper Section 1.2, final paragraph).

The paper sizes the agents' memory by scenario: the rendezvous logic
itself needs only counters of ``O(log E + log L)`` bits, while the
dominant term is how the exploration is represented --

* a UXS-driven agent needs ``O(log m)`` bits in Reingold's construction
  (our verified sequences are *stored*, costing ``len * ceil(log2 d_max)``
  bits -- the substitution trades memory for constructibility, see
  DESIGN.md);
* an agent given a DFS walk as a port sequence needs ``O(n log n)`` bits;
* an agent that must derive the walk from a port-labeled map needs up to
  ``O(n^2 log n)`` bits for the map itself;
* on a ring, ``ceil(log2 n)`` bits suffice to know ``n``.

These functions compute the exact bit counts for concrete instances so
the memory table of the paper can be regenerated (``bench_memory.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.graphs.port_graph import PortLabeledGraph


def bits_for(value: int) -> int:
    """Bits needed to store one integer in ``0..value`` (at least 1)."""
    if value < 0:
        raise ValueError(f"cannot size a negative range: {value}")
    return max(1, ceil(log2(value + 1)))


def counter_bits(schedule_length: int, label_space: int) -> int:
    """The paper's ``O(log E + log L)`` term, concretely.

    One round counter up to the schedule length plus the agent's label.
    """
    return bits_for(schedule_length) + bits_for(label_space)


def dfs_walk_bits(graph: PortLabeledGraph) -> int:
    """Bits to store a closed DFS walk as a port sequence: ``O(n log n)``.

    ``2(n-1)`` ports, each up to the maximum degree.
    """
    ports = 2 * (graph.num_nodes - 1)
    return ports * bits_for(graph.max_degree() - 1)


def map_bits(graph: PortLabeledGraph) -> int:
    """Bits to store the port-labeled map: up to ``O(n^2 log n)``.

    Each directed port slot stores its target node and the entry port.
    """
    total = 0
    node_bits = bits_for(graph.num_nodes - 1)
    for node in range(graph.num_nodes):
        degree = graph.degree(node)
        if degree:
            total += degree * (node_bits + bits_for(degree - 1))
    return total


def uxs_bits(sequence_length: int, max_degree: int) -> int:
    """Bits to store a verified UXS verbatim.

    Reingold's log-space agent would instead recompute terms in
    ``O(log m)`` working memory; storing is our documented substitution.
    """
    return sequence_length * bits_for(max(0, max_degree - 1))


def ring_size_bits(ring_size: int) -> int:
    """On a ring, knowing ``n`` is the entire map: ``ceil(log2 n)`` bits."""
    return bits_for(ring_size - 1)


@dataclass(frozen=True)
class MemoryProfile:
    """Memory footprint of one agent under one knowledge scenario."""

    scenario: str
    exploration_bits: int
    counter_bits: int

    @property
    def total_bits(self) -> int:
        return self.exploration_bits + self.counter_bits


def profile(
    scenario: str,
    exploration_bits: int,
    schedule_length: int,
    label_space: int,
) -> MemoryProfile:
    """Assemble a :class:`MemoryProfile` for reporting."""
    return MemoryProfile(
        scenario=scenario,
        exploration_bits=exploration_bits,
        counter_bits=counter_bits(schedule_length, label_space),
    )
