"""Minimal ASCII scatter plots for curve-shaped experiment output.

No plotting dependency is available offline, and the benchmark harness
prints to terminals anyway; a labelled character grid is enough to show
curve shapes (who wins, where crossovers fall).
"""

from __future__ import annotations

from typing import Sequence


def scatter_plot(
    points: Sequence[tuple[float, float, str]],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``(x, y, marker)`` points on a character grid.

    Markers are single characters; later points overwrite earlier ones on
    collisions.  Axes are annotated with min/max values.
    """
    if not points:
        return "(no points)"
    for _, _, marker in points:
        if len(marker) != 1:
            raise ValueError(f"markers must be single characters, got {marker!r}")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker

    lines = [f"{y_label} (top={y_max:g}, bottom={y_min:g})"]
    for row_cells in grid:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: left={x_min:g}, right={x_max:g}")
    return "\n".join(lines)
