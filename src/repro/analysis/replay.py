"""Replaying adversary-reported configurations.

Every worst-case number in the benchmark tables carries its argmax
:class:`~repro.sim.adversary.Configuration`.  :func:`replay` re-executes
it and (optionally) renders the timeline, so reported extremes are one
function call away from inspection.
"""

from __future__ import annotations

from repro.analysis.timeline import render_timeline
from repro.graphs.port_graph import PortLabeledGraph
from repro.graphs.validation import is_oriented_ring
from repro.sim.adversary import Configuration
from repro.sim.metrics import RendezvousResult
from repro.sim.program import ProgramFactory
from repro.sim.simulator import PresenceModel, simulate_rendezvous


def replay(
    graph: PortLabeledGraph,
    factory: ProgramFactory,
    config: Configuration,
    max_rounds: int | None = None,
    presence: PresenceModel = PresenceModel.FROM_START,
) -> RendezvousResult:
    """Re-run one adversarial configuration exactly."""
    return simulate_rendezvous(
        graph,
        factory,
        labels=config.labels,
        starts=config.starts,
        delay=config.delay,
        max_rounds=max_rounds,
        presence=presence,
    )


def replay_with_timeline(
    graph: PortLabeledGraph,
    factory: ProgramFactory,
    config: Configuration,
    max_rounds: int | None = None,
) -> tuple[RendezvousResult, str]:
    """Replay and render the space-time diagram (oriented rings only)."""
    if not is_oriented_ring(graph):
        raise ValueError("timelines are rendered for oriented rings only")
    result = replay(graph, factory, config, max_rounds=max_rounds)
    return result, render_timeline(result, graph.num_nodes)
