"""Plain-text table rendering for benchmark reports.

Every benchmark prints its results through :class:`Table` so the output of
``pytest benchmarks/`` is directly comparable with EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A fixed-header table accumulating rows, rendered with aligned columns."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_render_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())
        print()


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_ratio(measured: float, bound: float) -> str:
    """``measured/bound`` as a percentage string, guarded against zero."""
    if bound == 0:
        return "n/a"
    return f"{100.0 * measured / bound:.0f}%"


def print_lines(lines: Iterable[str]) -> None:
    """Print a block of report lines with surrounding blank lines."""
    print()
    for line in lines:
        print(line)
    print()
