"""The registered experiment catalog: EXP-01…12 plus the extensions.

This module is the single source of truth for every experiment's
instance constants (ring sizes, label spaces, adversarial pairs, delay
grids), its paper-bound assertions and its table renderer -- the data
that used to be copy-pasted across the ``benchmarks/bench_*`` scripts.
Each experiment registers by id in :data:`repro.registry.EXPERIMENTS`
(with the ``--quick`` profile shrinking the grid through the same
definitions), and the bench scripts are thin pytest shims over
:func:`repro.experiments.campaign.run_experiment`.

Scenario-shaped experiments express their grids as declarative
:class:`~repro.api.Scenario` units; the rest (certificates, baselines,
ablations, memory accounting) measure in plain code under ``measure``.
Both feed the same JSON-shaped report machinery.
"""

from __future__ import annotations

import itertools
import random
from math import log10, log2
from typing import Any, Mapping, Sequence

from repro.analysis.ascii_plot import scatter_plot
from repro.analysis.memory import (
    dfs_walk_bits,
    map_bits,
    profile,
    ring_size_bits,
    uxs_bits,
)
from repro.analysis.tables import Table, format_ratio
from repro.api import Scenario
from repro.baselines.oracle import OracleBaseline
from repro.baselines.ring_zigzag import RingZigzag
from repro.core.ablations import CheapShortWait, FastNoDelimiter, FastNoDoubling
from repro.core.bounds import thm31_time_lower
from repro.core.cheap import CheapSimultaneous
from repro.core.fast import Fast, FastSimultaneous
from repro.core.relabeling import smallest_t
from repro.core.unknown_e import IteratedDoublingRendezvous, ring_level_factory
from repro.experiments.base import (
    Check,
    Experiment,
    ExperimentContext,
    ExperimentReport,
    check,
)
from repro.exploration import (
    KnowledgeModel,
    best_exploration,
    measure_exploration,
)
from repro.exploration.dfs import KnownMapDFS
from repro.exploration.ring import RingExploration
from repro.exploration.uxs import build_verified_uxs
from repro.graphs.families import oriented_ring, standard_test_suite, star_graph
from repro.lower_bounds.certificates import certify_theorem_31, certify_theorem_32
from repro.lower_bounds.trim import trimmed_from_algorithm
from repro.registry import EXPERIMENTS
from repro.sim.gathering import gather
from repro.sim.simulator import simulate_rendezvous

# ----------------------------------------------------------------------
# Shared instance constants (previously duplicated across bench scripts)
# ----------------------------------------------------------------------

#: The paper's standard lower-bound instance: the oriented ring with
#: ``6 | n`` that Section 3's proofs use.
RING_SIZE = 12

#: The optimal exploration budget on that ring, ``E = n - 1``.
RING_BUDGET = RING_SIZE - 1


def adversarial_pairs(label_space: int) -> tuple[tuple[int, int], ...]:
    """Lex-adjacent ranks and extremes -- the label pairs that stress
    relabeling-based schedules when exhaustive enumeration is infeasible."""
    return (
        (label_space - 1, label_space),
        (label_space // 2, label_space // 2 + 1),
        (1, 2),
        (1, label_space),
    )


def ring_scenario(
    algorithm: str,
    label_space: int,
    *,
    n: int = RING_SIZE,
    delays: Sequence[int] = (0,),
    label_pairs: Sequence[tuple[int, int]] | None = None,
    weight: int = 2,
    presence: str = "from-start",
) -> Scenario:
    """A Scenario on the oriented ``n``-ring (start pinning is derived)."""
    return Scenario(
        graph="ring",
        graph_params={"n": n},
        algorithm=algorithm,
        label_space=label_space,
        weight=weight,
        delays=tuple(delays),
        label_pairs=label_pairs,
        presence=presence,
    )


# ----------------------------------------------------------------------
# Shared check and render helpers
# ----------------------------------------------------------------------


def _bound_checks(ctx: ExperimentContext) -> list[Check]:
    """Time/cost within the paper bound, for every grid unit."""
    out = []
    for key, res in ctx.results():
        out.append(
            check(
                f"{key}: time within bound",
                res["time_within_bound"],
                f"max_time={res['max_time']} <= {res['time_bound']} "
                f"(margin {res['time_bound'] - res['max_time']})",
            )
        )
        out.append(
            check(
                f"{key}: cost within bound",
                res["cost_within_bound"],
                f"max_cost={res['max_cost']} <= {res['cost_bound']} "
                f"(margin {res['cost_bound'] - res['max_cost']})",
            )
        )
    return out


def _graph_label(unit: Mapping[str, Any]) -> str:
    graph = unit["scenario"]["graph"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(graph["params"].items()))
    return f"{graph['family']}({inner})"


def _register(experiment: Experiment, order: int) -> Experiment:
    EXPERIMENTS.register(
        experiment.id, order=order, exp_id=experiment.exp_id
    )(experiment)
    return experiment


# ----------------------------------------------------------------------
# EXP-01  Cheap, simultaneous start
# ----------------------------------------------------------------------

#: (family, params) per instance; ring and complete are registered as
#: vertex-transitive, so start pinning is derived, not repeated here.
EXP01_GRAPHS = (
    ("ring", {"n": RING_SIZE}),
    ("star", {"n": 9}),
    ("tree", {"depth": 2}),
    ("complete", {"n": 6}),
)
EXP01_LABEL_SPACES = (4, 8)
EXP01_QUICK_GRAPHS = (("ring", {"n": RING_SIZE}), ("star", {"n": 9}))
EXP01_QUICK_LABEL_SPACES = (4,)


def _exp01_scenarios(quick: bool):
    graphs = EXP01_QUICK_GRAPHS if quick else EXP01_GRAPHS
    label_spaces = EXP01_QUICK_LABEL_SPACES if quick else EXP01_LABEL_SPACES
    return [
        (
            f"{family}-L{label_space}",
            Scenario(
                graph=family,
                graph_params=params,
                algorithm="cheap-sim",
                label_space=label_space,
            ),
        )
        for family, params in graphs
        for label_space in label_spaces
    ]


def _exp01_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    for key, res in ctx.results():
        if key.startswith("ring-"):
            checks.append(
                check(
                    f"{key}: cost on the oriented ring is exactly E",
                    res["max_cost"] == RING_BUDGET,
                    f"max_cost={res['max_cost']}, E={RING_BUDGET}",
                )
            )
    return checks


def _exp01_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-01  Cheap, simultaneous start: cost = one exploration, time <= l E",
        ["graph", "L", "E", "worst cost", "cost bound E", "worst time",
         "time bound (L-1)E", "time usage"],
    )
    for unit in report.units:
        res = unit["result"]
        table.add_row(
            _graph_label(unit), res["label_space"], res["exploration_budget"],
            res["max_cost"], res["cost_bound"],
            res["max_time"], res["time_bound"],
            format_ratio(res["max_time"], res["time_bound"]),
        )
    return [table.render()]


EXP01 = _register(
    Experiment(
        id="exp01",
        exp_id="EXP-01",
        title="Cheap with simultaneous start",
        claim="Cheap (simultaneous): cost = one exploration, time `<= (L+1)E`",
        source="Section 2",
        verdict_text=(
            "reproduced — bounds hold on oriented rings across `L`, "
            "time grows linearly in `L`"
        ),
        assess=_exp01_assess,
        scenarios=_exp01_scenarios,
        render=_exp01_render,
    ),
    order=1,
)


# ----------------------------------------------------------------------
# EXP-02  Proposition 2.1: Cheap under arbitrary delays
# ----------------------------------------------------------------------

EXP02_LABEL_SPACE = 5
#: (family, params, E) -- the budget is recorded so the delay grid
#: (fractions and multiples of E) has one explicit source, and a check
#: pins the measured budget to it.
EXP02_GRAPHS = (
    ("ring", {"n": RING_SIZE}, RING_BUDGET),
    ("star", {"n": 8}, 2 * 8 - 3),
)


def _exp02_delays(budget: int, quick: bool) -> tuple[int, ...]:
    if quick:
        return (0, budget, 2 * budget)
    return (0, budget // 2, budget, 2 * budget)


def _exp02_scenarios(quick: bool):
    graphs = EXP02_GRAPHS[:1] if quick else EXP02_GRAPHS
    units = []
    for family, params, budget in graphs:
        for delay in _exp02_delays(budget, quick):
            units.append(
                (
                    f"{family}-d{delay}",
                    Scenario(
                        graph=family,
                        graph_params=params,
                        algorithm="cheap",
                        label_space=EXP02_LABEL_SPACE,
                        delays=(delay,),
                    ),
                )
            )
    return units


def _exp02_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    budgets = {family: budget for family, _, budget in EXP02_GRAPHS}
    for key, res in ctx.results():
        family = key.split("-d")[0]
        checks.append(
            check(
                f"{key}: exploration budget matches the declared constant",
                res["exploration_budget"] == budgets[family],
                f"E={res['exploration_budget']}, expected {budgets[family]}",
            )
        )
    return checks


def _exp02_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-02  Prop 2.1: Cheap with delays: cost <= 3E, time <= (2L+1)E",
        ["graph", "E", "delay", "worst cost", "3E", "cost usage",
         "worst time", "(2L+1)E", "time usage"],
    )
    for unit in report.units:
        res = unit["result"]
        table.add_row(
            _graph_label(unit), res["exploration_budget"],
            unit["scenario"]["delays"][0],
            res["max_cost"], res["cost_bound"],
            format_ratio(res["max_cost"], res["cost_bound"]),
            res["max_time"], res["time_bound"],
            format_ratio(res["max_time"], res["time_bound"]),
        )
    return [
        table.render(),
        "Shape check: the bounds hold uniformly across all delays",
        "(for delay > E the sleeping agent is found within the first E rounds).",
    ]


EXP02 = _register(
    Experiment(
        id="exp02",
        exp_id="EXP-02",
        title="Cheap under arbitrary delays",
        claim="Prop 2.1: Cheap under delays: cost `<= 3E`, time `<= (2l+3)E`",
        source="Proposition 2.1",
        verdict_text="reproduced — uniform in the adversary's delay",
        assess=_exp02_assess,
        scenarios=_exp02_scenarios,
        render=_exp02_render,
    ),
    order=2,
)


# ----------------------------------------------------------------------
# EXP-03  Fast, simultaneous start
# ----------------------------------------------------------------------

EXP03_LABEL_SPACES = (4, 8, 16, 32)
EXP03_QUICK_LABEL_SPACES = (4, 8)


def _exp03_scenarios(quick: bool):
    label_spaces = EXP03_QUICK_LABEL_SPACES if quick else EXP03_LABEL_SPACES
    return [
        (f"L{label_space}", ring_scenario("fast-sim", label_space))
        for label_space in label_spaces
    ]


def _exp03_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    results = [res for _, res in ctx.results()]
    budget = results[0]["exploration_budget"]
    times = [res["max_time"] for res in results]
    for earlier, later, res in zip(times, times[1:], results[1:]):
        checks.append(
            check(
                f"L{res['label_space']}: doubling L adds at most 2E rounds",
                later - earlier <= 2 * budget,
                f"+{later - earlier} rounds <= 2E={2 * budget}",
            )
        )
    return checks


def _exp03_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-03  Fast, simultaneous start: time <= (2 floor(log(L-1)) + 4) E",
        ["L", "E", "worst time", "bound", "usage", "worst cost", "2x bound"],
    )
    for unit in report.units:
        res = unit["result"]
        table.add_row(
            res["label_space"], res["exploration_budget"],
            res["max_time"], res["time_bound"],
            format_ratio(res["max_time"], res["time_bound"]),
            res["max_cost"], res["cost_bound"],
        )
    return [
        table.render(),
        "Shape check: each doubling of L adds at most 2E rounds -- log growth.",
    ]


EXP03 = _register(
    Experiment(
        id="exp03",
        exp_id="EXP-03",
        title="Fast with simultaneous start",
        claim="Fast (simultaneous): time `<= (2 floor(log(L-1)) + 4)E`",
        source="Section 2",
        verdict_text=(
            "reproduced — doubling `L` adds at most `2E` rounds (log growth)"
        ),
        assess=_exp03_assess,
        scenarios=_exp03_scenarios,
        render=_exp03_render,
    ),
    order=3,
)


# ----------------------------------------------------------------------
# EXP-04  Proposition 2.2: Fast under arbitrary delays
# ----------------------------------------------------------------------

EXP04_LABEL_SPACES = (4, 16)
EXP04_DELAYS = (0, RING_BUDGET, 3 * RING_BUDGET)
EXP04_QUICK_LABEL_SPACES = (4,)
EXP04_QUICK_DELAYS = (0, RING_BUDGET)


def _exp04_scenarios(quick: bool):
    label_spaces = EXP04_QUICK_LABEL_SPACES if quick else EXP04_LABEL_SPACES
    delays = EXP04_QUICK_DELAYS if quick else EXP04_DELAYS
    return [
        (
            f"L{label_space}-d{delay}",
            ring_scenario("fast", label_space, delays=(delay,)),
        )
        for label_space in label_spaces
        for delay in delays
    ]


def _exp04_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    for key, res in ctx.results():
        checks.append(
            check(
                f"{key}: cost stays within twice the time bound",
                res["max_cost"] <= 2 * res["time_bound"],
                f"max_cost={res['max_cost']} <= 2*{res['time_bound']}",
            )
        )
    return checks


def _exp04_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-04  Prop 2.2: Fast with delays: time <= (4 log(L-1) + 9) E, "
        "cost <= 2 time",
        ["L", "delay", "worst time", "time bound", "usage",
         "worst cost", "cost bound"],
    )
    for unit in report.units:
        res = unit["result"]
        table.add_row(
            res["label_space"], unit["scenario"]["delays"][0],
            res["max_time"], res["time_bound"],
            format_ratio(res["max_time"], res["time_bound"]),
            res["max_cost"], res["cost_bound"],
        )
    return [table.render()]


EXP04 = _register(
    Experiment(
        id="exp04",
        exp_id="EXP-04",
        title="Fast under arbitrary delays",
        claim="Prop 2.2: Fast under delays: time `<= (4 log(L-1)+9)E`",
        source="Proposition 2.2",
        verdict_text="reproduced — cost stays within twice the time bound",
        assess=_exp04_assess,
        scenarios=_exp04_scenarios,
        render=_exp04_render,
    ),
    order=4,
)


# ----------------------------------------------------------------------
# EXP-05  Proposition 2.3 / Corollary 2.1: FastWithRelabeling(w)
# ----------------------------------------------------------------------

EXP05_WEIGHTS = (1, 2, 3)
EXP05_LABEL_SPACES = (8, 64, 256)
EXP05_QUICK_WEIGHTS = (1, 3)
EXP05_QUICK_LABEL_SPACES = (8, 64)


def _exp05_grid(quick: bool) -> tuple[tuple[int, ...], tuple[int, ...]]:
    if quick:
        return EXP05_QUICK_WEIGHTS, EXP05_QUICK_LABEL_SPACES
    return EXP05_WEIGHTS, EXP05_LABEL_SPACES


def _exp05_scenarios(quick: bool):
    weights, label_spaces = _exp05_grid(quick)
    return [
        (
            f"w{weight}-L{label_space}",
            ring_scenario(
                "fwr-sim",
                label_space,
                weight=weight,
                label_pairs=adversarial_pairs(label_space),
            ),
        )
        for weight in weights
        for label_space in label_spaces
    ]


def _exp05_measure(quick: bool) -> Mapping[str, Any]:
    weights, label_spaces = _exp05_grid(quick)
    return {
        "label_length": {
            f"w{weight}-L{label_space}": smallest_t(label_space, weight)
            for weight in weights
            for label_space in label_spaces
        },
    }


def _exp05_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    weights, label_spaces = _exp05_grid(ctx.quick)
    for weight in weights:
        costs = [
            ctx.result(f"w{weight}-L{ls}")["max_cost"] for ls in label_spaces
        ]
        checks.append(
            check(
                f"w{weight}: measured cost is flat in L (within 2wE)",
                max(costs) <= 2 * weight * RING_BUDGET,
                f"max over L of max_cost={max(costs)} <= {2 * weight * RING_BUDGET}",
            )
        )
    largest = max(label_spaces)
    low = ctx.result(f"w{min(weights)}-L{largest}")["max_time"]
    high = ctx.result(f"w{max(weights)}-L{largest}")["max_time"]
    checks.append(
        check(
            f"L{largest}: larger w trades cost for time",
            low > high,
            f"time(w={min(weights)})={low} > time(w={max(weights)})={high}",
        )
    )
    return checks


def _exp05_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-05  Prop 2.3 / Cor 2.1: FastWithRelabeling(w): cost <= 2wE flat "
        "in L, time grows like L^(1/w)",
        ["w", "L", "t", "worst cost", "2wE", "worst time", "t*E bound", "usage"],
    )
    lengths = report.measurements["label_length"]
    for unit in report.units:
        res = unit["result"]
        algo = unit["scenario"]["algorithm"]
        table.add_row(
            algo["weight"], res["label_space"], lengths[unit["key"]],
            res["max_cost"], res["cost_bound"],
            res["max_time"], res["time_bound"],
            format_ratio(res["max_time"], res["time_bound"]),
        )
    return [
        table.render(),
        "Shape checks: measured cost stays within 2wE for every L "
        "(the relabeling's purpose);",
        "label length t follows smallest_t -- the L^(1/w) shape.",
    ]


EXP05 = _register(
    Experiment(
        id="exp05",
        exp_id="EXP-05",
        title="FastWithRelabeling interpolates",
        claim="Prop 2.3 / Cor 2.1: FastWithRelabeling: cost `O(E)`, time `o(EL)`",
        source="Proposition 2.3, Corollary 2.1",
        verdict_text=(
            "reproduced — measured time/cost sit between the Cheap and "
            "Fast endpoints"
        ),
        assess=_exp05_assess,
        scenarios=_exp05_scenarios,
        measure=_exp05_measure,
        render=_exp05_render,
    ),
    order=5,
)


# ----------------------------------------------------------------------
# EXP-06  Theorem 3.1 certificate on Cheap
# ----------------------------------------------------------------------

EXP06_LABEL_SPACES = (4, 8, 12, 16)
EXP06_QUICK_LABEL_SPACES = (4, 16)


def _exp06_label_spaces(quick: bool) -> tuple[int, ...]:
    return EXP06_QUICK_LABEL_SPACES if quick else EXP06_LABEL_SPACES


def _exp06_measure(quick: bool) -> Mapping[str, Any]:
    label_spaces = _exp06_label_spaces(quick)
    rows = {}
    for label_space in label_spaces:
        algorithm = CheapSimultaneous(RingExploration(RING_SIZE), label_space)
        certificate = certify_theorem_31(
            trimmed_from_algorithm(algorithm, RING_SIZE)
        )
        rows[f"L{label_space}"] = {
            "slack": certificate.slack,
            "facts": {
                "3.3": certificate.fact_33_holds,
                "3.5": certificate.fact_35_holds,
                "3.6": certificate.fact_36_holds,
                "3.7": certificate.fact_37_holds,
                "3.8": certificate.fact_38_holds,
            },
            "all_facts_hold": certificate.all_facts_hold,
            "chain_length": len(certificate.chain_times),
            "realized_final_time": certificate.realized_final_time,
            "predicted_time_lower": certificate.predicted_time_lower,
            "paper_curve": thm31_time_lower(label_space, RING_BUDGET),
        }
    return {"label_spaces": list(label_spaces), "certificates": rows}


def _exp06_assess(ctx: ExperimentContext) -> list[Check]:
    checks = []
    label_spaces = ctx.measurements["label_spaces"]
    rows = ctx.measurements["certificates"]
    for label_space in label_spaces:
        row = rows[f"L{label_space}"]
        checks.append(
            check(
                f"L{label_space}: Facts 3.3-3.8 all hold",
                row["all_facts_hold"],
                str(row["facts"]),
            )
        )
        checks.append(
            check(
                f"L{label_space}: Cheap's cost slack phi is 0",
                row["slack"] == 0,
                f"phi={row['slack']}",
            )
        )
        checks.append(
            check(
                f"L{label_space}: realized chain time >= predicted lower",
                row["realized_final_time"] >= row["predicted_time_lower"],
                f"{row['realized_final_time']} >= "
                f"{row['predicted_time_lower']:.1f}",
            )
        )
    lo, hi = min(label_spaces), max(label_spaces)
    final_lo = rows[f"L{lo}"]["realized_final_time"]
    final_hi = rows[f"L{hi}"]["realized_final_time"]
    checks.append(
        check(
            "final chain time grows linearly in L",
            final_hi >= 3 * final_lo,
            f"time(L={hi})={final_hi} >= 3*time(L={lo})={3 * final_lo}",
        )
    )
    return checks


def _exp06_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-06  Thm 3.1 certificate on Cheap (phi = 0): chain grows ~F/2 "
        "per link => time Omega(EL)",
        ["L", "phi", "facts 3.3/3.5/3.7/3.8", "chain len", "final |alpha|",
         "predicted lower", "paper curve (L/2-1)(F)/2"],
    )
    for label_space in report.measurements["label_spaces"]:
        row = report.measurements["certificates"][f"L{label_space}"]
        facts = "/".join(
            "ok" if row["facts"][fact] else "FAIL"
            for fact in ("3.3", "3.5", "3.7", "3.8")
        )
        table.add_row(
            label_space, row["slack"], facts, row["chain_length"],
            row["realized_final_time"],
            f"{row['predicted_time_lower']:.1f}",
            f"{row['paper_curve']:.1f}",
        )
    return [
        table.render(),
        "All facts of the Theorem 3.1 argument hold on Cheap's vectors, and the",
        "realized chain time grows linearly in L: the Omega(EL) mechanism is live.",
    ]


EXP06 = _register(
    Experiment(
        id="exp06",
        exp_id="EXP-06",
        title="Theorem 3.1 certificate",
        claim="Thm 3.1: cost `E + o(E)` ⇒ time `Omega(EL)`",
        source="Theorem 3.1",
        verdict_text=(
            "reproduced — certificate (Facts 3.3–3.8) checks on the "
            "trimmed behaviours"
        ),
        assess=_exp06_assess,
        measure=_exp06_measure,
        render=_exp06_render,
    ),
    order=6,
)


# ----------------------------------------------------------------------
# EXP-07  Theorem 3.2 certificate on Fast
# ----------------------------------------------------------------------

EXP07_LABEL_SPACES = (4, 8, 16, 32)
#: Larger instances (numpy-accelerated Trim) showing the bound scales in E.
EXP07_SCALING_CASES = ((12, 16), (24, 16), (36, 16))
EXP07_QUICK_LABEL_SPACES = (4, 32)
EXP07_QUICK_SCALING_CASES = ((12, 16), (24, 16))


def _exp07_certificate_row(ring_size: int, label_space: int) -> dict[str, Any]:
    algorithm = FastSimultaneous(RingExploration(ring_size), label_space)
    certificate = certify_theorem_32(trimmed_from_algorithm(algorithm, ring_size))
    return {
        "facts": {
            "3.9": certificate.fact_39_holds,
            "3.12-14": certificate.invariants_hold,
            "3.15": certificate.distinct_within_classes,
            "3.17": certificate.fact_317_holds,
        },
        "all_facts_hold": certificate.all_facts_hold,
        "max_weight": certificate.max_weight,
        "implied_cost_lower": certificate.implied_cost_lower,
        "measured_max_cost": certificate.measured_max_cost,
    }


def _exp07_measure(quick: bool) -> Mapping[str, Any]:
    label_spaces = EXP07_QUICK_LABEL_SPACES if quick else EXP07_LABEL_SPACES
    scaling = EXP07_QUICK_SCALING_CASES if quick else EXP07_SCALING_CASES
    return {
        "label_spaces": list(label_spaces),
        "certificates": {
            f"L{label_space}": _exp07_certificate_row(RING_SIZE, label_space)
            for label_space in label_spaces
        },
        "scaling_cases": [list(case) for case in scaling],
        "scaling": {
            f"n{ring_size}-L{label_space}": _exp07_certificate_row(
                ring_size, label_space
            )
            for ring_size, label_space in scaling
        },
    }


def _exp07_assess(ctx: ExperimentContext) -> list[Check]:
    checks = []
    label_spaces = ctx.measurements["label_spaces"]
    rows = ctx.measurements["certificates"]
    for label_space in label_spaces:
        row = rows[f"L{label_space}"]
        checks.append(
            check(
                f"L{label_space}: Facts 3.9-3.17 all hold",
                row["all_facts_hold"],
                str(row["facts"]),
            )
        )
        checks.append(
            check(
                f"L{label_space}: measured cost >= implied lower bound",
                row["measured_max_cost"] >= row["implied_cost_lower"],
                f"{row['measured_max_cost']} >= {row['implied_cost_lower']:.1f}",
            )
        )
    lo, hi = min(label_spaces), max(label_spaces)
    checks.append(
        check(
            "progress weight grows with log L",
            rows[f"L{hi}"]["max_weight"] > rows[f"L{lo}"]["max_weight"],
            f"k(L={hi})={rows[f'L{hi}']['max_weight']} > "
            f"k(L={lo})={rows[f'L{lo}']['max_weight']}",
        )
    )
    for ring_size, label_space in ctx.measurements["scaling_cases"]:
        row = ctx.measurements["scaling"][f"n{ring_size}-L{label_space}"]
        checks.append(
            check(
                f"n{ring_size}: certificate holds and bound scales with E",
                row["all_facts_hold"]
                and row["measured_max_cost"] >= row["implied_cost_lower"],
                f"cost {row['measured_max_cost']} >= "
                f"{row['implied_cost_lower']:.1f}",
            )
        )
    return checks


def _exp07_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-07  Thm 3.2 certificate on Fast: progress weight k ~ log L "
        "=> cost >= kE/6",
        ["L", "facts 3.9/3.12-14/3.15/3.17", "max k", "k per log L",
         "implied cost lower", "measured max cost", "cost per E log L"],
    )
    for label_space in report.measurements["label_spaces"]:
        row = report.measurements["certificates"][f"L{label_space}"]
        facts = "/".join(
            "ok" if row["facts"][fact] else "FAIL"
            for fact in ("3.9", "3.12-14", "3.15", "3.17")
        )
        log_l = log2(label_space)
        table.add_row(
            label_space, facts, row["max_weight"],
            f"{row['max_weight'] / log_l:.2f}",
            f"{row['implied_cost_lower']:.1f}",
            row["measured_max_cost"],
            f"{row['measured_max_cost'] / (RING_BUDGET * log_l):.2f}",
        )
    table2 = Table(
        "EXP-07b  The same certificate across ring sizes (bound scales with E)",
        ["n", "E", "L", "max k", "implied cost lower", "measured max cost"],
    )
    for ring_size, label_space in report.measurements["scaling_cases"]:
        row = report.measurements["scaling"][f"n{ring_size}-L{label_space}"]
        table2.add_row(
            ring_size, ring_size - 1, label_space, row["max_weight"],
            f"{row['implied_cost_lower']:.1f}", row["measured_max_cost"],
        )
    return [
        table.render(),
        table2.render(),
        "All facts of the Theorem 3.2 argument hold; progress weight and measured",
        "cost both track log L, and the implied bound scales with E -- Fast sits",
        "on the Omega(E log L) cost floor in both parameters.",
    ]


EXP07 = _register(
    Experiment(
        id="exp07",
        exp_id="EXP-07",
        title="Theorem 3.2 certificate",
        claim="Thm 3.2: time `O(E log L)` ⇒ cost `Omega(E log L)`",
        source="Theorem 3.2",
        verdict_text=(
            "reproduced — certificate (Facts 3.9–3.17) checks on Fast's "
            "trimmed behaviours"
        ),
        assess=_exp07_assess,
        measure=_exp07_measure,
        render=_exp07_render,
    ),
    order=7,
)


# ----------------------------------------------------------------------
# EXP-08  The time/cost tradeoff curve
# ----------------------------------------------------------------------

EXP08_LABEL_SPACE = 1024
EXP08_PAIRS = ((1022, 1023), (1023, 1024), (511, 512), (1, 2), (1, 1024))
#: The quick subset keeps (1022,1023) -- the pair that maximises Fast's
#: cost -- and (1,2) -- the one that maximises FWR(2)'s time -- so the
#: frontier-ordering checks stay meaningful on the shrunk grid.
EXP08_QUICK_PAIRS = ((1022, 1023), (511, 512), (1, 2))
#: Curve order: cheap end -> interpolations -> fast end.
EXP08_STRATEGIES = (
    ("cheap", "cheap-sim", 2),
    ("fwr-w3", "fwr-sim", 3),
    ("fwr-w2", "fwr-sim", 2),
    ("fast", "fast-sim", 2),
)


def _exp08_pairs(quick: bool):
    return EXP08_QUICK_PAIRS if quick else EXP08_PAIRS


def _exp08_scenarios(quick: bool):
    pairs = _exp08_pairs(quick)
    return [
        (
            key,
            ring_scenario(
                algorithm, EXP08_LABEL_SPACE, weight=weight, label_pairs=pairs
            ),
        )
        for key, algorithm, weight in EXP08_STRATEGIES
    ]


def _exp08_measure(quick: bool) -> Mapping[str, Any]:
    ring = oriented_ring(RING_SIZE)
    exploration = RingExploration(RING_SIZE)
    oracle_time = oracle_cost = 0
    for pair in _exp08_pairs(quick):
        oracle = OracleBaseline(exploration, pair)
        for start_b in range(1, RING_SIZE):
            result = simulate_rendezvous(
                ring, oracle, labels=pair, starts=(0, start_b)
            )
            if not result.met:
                raise AssertionError(f"oracle failed on {pair} start {start_b}")
            oracle_time = max(oracle_time, result.time)
            oracle_cost = max(oracle_cost, result.cost)
    return {"oracle": {"max_time": oracle_time, "max_cost": oracle_cost}}


def _exp08_assess(ctx: ExperimentContext) -> list[Check]:
    checks = _bound_checks(ctx)
    cheap = ctx.result("cheap")
    fast = ctx.result("fast")
    w2 = ctx.result("fwr-w2")
    w3 = ctx.result("fwr-w3")
    checks.append(
        check(
            "frontier: cost rises from Cheap through FWR(3) to Fast",
            cheap["max_cost"] < w3["max_cost"] < fast["max_cost"],
            f"{cheap['max_cost']} < {w3['max_cost']} < {fast['max_cost']}",
        )
    )
    checks.append(
        check(
            "frontier: time falls from Cheap through FWR(2) to Fast",
            fast["max_time"] < w2["max_time"] < cheap["max_time"],
            f"{fast['max_time']} < {w2['max_time']} < {cheap['max_time']}",
        )
    )
    checks.append(
        check(
            "FWR(3) is already far below the cheap end's time",
            w3["max_time"] < cheap["max_time"],
            f"{w3['max_time']} < {cheap['max_time']}",
        )
    )
    return checks


def _exp08_render(report: ExperimentReport) -> list[str]:
    budget = RING_BUDGET
    oracle = report.measurements["oracle"]
    table = Table(
        f"EXP-08  The tradeoff curve on the oriented {RING_SIZE}-ring, "
        f"L = {EXP08_LABEL_SPACE}",
        ["strategy", "worst cost", "cost/E", "worst time", "time/E"],
    )
    table.add_row(
        "oracle (shared labels)", oracle["max_cost"],
        f"{oracle['max_cost'] / budget:.1f}", oracle["max_time"],
        f"{oracle['max_time'] / budget:.1f}",
    )
    markers = [(oracle["max_cost"] / budget, log10(oracle["max_time"]), "O")]
    for unit, marker in zip(report.units, "CdDF"):
        res = unit["result"]
        table.add_row(
            res["algorithm"], res["max_cost"],
            f"{res['max_cost'] / budget:.1f}", res["max_time"],
            f"{res['max_time'] / budget:.1f}",
        )
        markers.append((res["max_cost"] / budget, log10(res["max_time"]), marker))
    plot = scatter_plot(
        markers, width=56, height=14,
        x_label="worst cost / E",
        y_label="log10(worst time)",
    )
    return [
        table.render(),
        plot,
        "O = oracle, C = Cheap, d = FastWithRelabeling(3), "
        "D = FastWithRelabeling(2), F = Fast",
        "The frontier bends exactly as the paper describes: spending more cost",
        "(more explorations) buys exponentially less waiting.",
    ]


EXP08 = _register(
    Experiment(
        id="exp08",
        exp_id="EXP-08",
        title="The time/cost tradeoff curve",
        claim="The time/cost tradeoff curve",
        source="Abstract / Conclusion",
        verdict_text=(
            "reproduced — strategies interpolate between the cheap and "
            "fast extremes"
        ),
        assess=_exp08_assess,
        scenarios=_exp08_scenarios,
        measure=_exp08_measure,
        render=_exp08_render,
    ),
    order=8,
)


# ----------------------------------------------------------------------
# EXP-09  Unknown E via iterated doubling
# ----------------------------------------------------------------------

EXP09_LABEL_SPACE = 4
EXP09_RING_SIZES = (6, 12, 24, 48)
EXP09_QUICK_RING_SIZES = (6, 12, 24)
EXP09_LABEL_PAIRS = ((1, 2), (3, 4), (2, 3))


def _exp09_worst_over_configs(ring, factory, ring_size):
    worst_time = worst_cost = 0
    for labels in EXP09_LABEL_PAIRS:
        for start_b in (1, ring_size // 2, ring_size - 1):
            result = simulate_rendezvous(
                ring, factory, labels=labels, starts=(0, start_b)
            )
            if not result.met:
                raise AssertionError(f"no meeting: {labels} start {start_b}")
            worst_time = max(worst_time, result.time)
            worst_cost = max(worst_cost, result.cost)
    return worst_time, worst_cost


def _exp09_measure(quick: bool) -> Mapping[str, Any]:
    ring_sizes = EXP09_QUICK_RING_SIZES if quick else EXP09_RING_SIZES
    rows = {}
    for ring_size in ring_sizes:
        ring = oriented_ring(ring_size)
        wrapper = IteratedDoublingRendezvous(
            Fast, ring_level_factory(), EXP09_LABEL_SPACE,
            start_level=2, max_level=10,
        )
        direct = Fast(RingExploration(ring_size), EXP09_LABEL_SPACE)
        unknown_time, unknown_cost = _exp09_worst_over_configs(
            ring, wrapper, ring_size
        )
        direct_time, direct_cost = _exp09_worst_over_configs(
            ring, direct, ring_size
        )
        rows[f"n{ring_size}"] = {
            "unknown_time": unknown_time,
            "direct_time": direct_time,
            "unknown_cost": unknown_cost,
            "direct_cost": direct_cost,
        }
    return {"ring_sizes": list(ring_sizes), "rows": rows}


def _exp09_assess(ctx: ExperimentContext) -> list[Check]:
    checks = []
    for ring_size in ctx.measurements["ring_sizes"]:
        row = ctx.measurements["rows"][f"n{ring_size}"]
        checks.append(
            check(
                f"n{ring_size}: time overhead stays within the telescoping "
                "constant",
                row["unknown_time"] <= 8 * row["direct_time"],
                f"{row['unknown_time']} <= 8*{row['direct_time']}",
            )
        )
        checks.append(
            check(
                f"n{ring_size}: cost overhead stays within the telescoping "
                "constant",
                row["unknown_cost"] <= 8 * row["direct_cost"],
                f"{row['unknown_cost']} <= 8*{row['direct_cost']}",
            )
        )
    return checks


def _exp09_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-09  Unknown E: iterated doubling vs. exact E "
        f"(Fast, L = {EXP09_LABEL_SPACE})",
        ["n", "time unknown-E", "time known-E", "time overhead",
         "cost unknown-E", "cost known-E", "cost overhead"],
    )
    for ring_size in report.measurements["ring_sizes"]:
        row = report.measurements["rows"][f"n{ring_size}"]
        table.add_row(
            ring_size, row["unknown_time"], row["direct_time"],
            f"{row['unknown_time'] / row['direct_time']:.2f}x",
            row["unknown_cost"], row["direct_cost"],
            f"{row['unknown_cost'] / row['direct_cost']:.2f}x",
        )
    return [
        table.render(),
        "The overhead stays bounded as n grows (telescoping geometric budgets);",
        "the complexities are preserved up to a constant, as the Conclusion "
        "claims.",
    ]


EXP09 = _register(
    Experiment(
        id="exp09",
        exp_id="EXP-09",
        title="Unknown E via iterated doubling",
        claim="Unknown `E` via iterated doubling",
        source="Conclusion",
        verdict_text=(
            "reproduced — meets with constant-factor overhead over the "
            "known-`E` run"
        ),
        assess=_exp09_assess,
        measure=_exp09_measure,
        render=_exp09_render,
    ),
    order=9,
)


# ----------------------------------------------------------------------
# EXP-10  Exploration budgets per knowledge model
# ----------------------------------------------------------------------

EXP10_SUITE_SEED = 0x10
#: How many suite graphs the quick profile keeps (the head of the suite
#: covers ring / random-port ring / path / star / complete -- every
#: budget formula the checks pin down).
EXP10_QUICK_SUITE_SIZE = 5


def _exp10_verified_budget(graph, procedure, provide_position=True):
    worst_moves = 0
    visited_all = True
    for start in range(graph.num_nodes):
        visited, moves = measure_exploration(
            procedure, graph, start,
            provide_map=True, provide_position=provide_position,
        )
        visited_all = visited_all and visited == set(range(graph.num_nodes))
        worst_moves = max(worst_moves, moves)
    return {
        "moves": worst_moves,
        "visited_all": visited_all,
        "within_budget": worst_moves <= procedure.budget,
    }


def _exp10_measure(quick: bool) -> Mapping[str, Any]:
    suite = standard_test_suite(random.Random(EXP10_SUITE_SEED))
    if quick:
        suite = suite[:EXP10_QUICK_SUITE_SIZE]
    rows = []
    for name, graph in suite:
        with_pos = best_exploration(graph, KnowledgeModel.MAP_WITH_POSITION)
        without_pos = best_exploration(
            graph, KnowledgeModel.MAP_WITHOUT_POSITION
        )
        rows.append(
            {
                "graph": name,
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
                "with_position": {
                    "name": with_pos.name,
                    "budget": with_pos.budget,
                    **_exp10_verified_budget(graph, with_pos),
                },
                "without_position": {
                    "name": without_pos.name,
                    "budget": without_pos.budget,
                    **_exp10_verified_budget(
                        graph, without_pos, provide_position=False
                    ),
                },
            }
        )
    return {"rows": rows}


#: Budget formula per with-position procedure, from Section 1.2.
_EXP10_FORMULAS = {
    "ring-clockwise": lambda n, e: n - 1,
    "hamiltonian": lambda n, e: n - 1,
    "eulerian": lambda n, e: e - 1,
    "dfs-open": lambda n, e: 2 * n - 3,
}


def _exp10_assess(ctx: ExperimentContext) -> list[Check]:
    checks = []
    for row in ctx.measurements["rows"]:
        for side in ("with_position", "without_position"):
            data = row[side]
            checks.append(
                check(
                    f"{row['graph']} ({data['name']}): explores everything "
                    "within its budget",
                    data["visited_all"] and data["within_budget"],
                    f"moves={data['moves']} <= E={data['budget']}",
                )
            )
        data = row["with_position"]
        formula = _EXP10_FORMULAS.get(data["name"])
        if formula is not None:
            expected = formula(row["num_nodes"], row["num_edges"])
            checks.append(
                check(
                    f"{row['graph']}: {data['name']} budget matches the "
                    "paper formula",
                    data["budget"] == expected,
                    f"E={data['budget']}, formula gives {expected}",
                )
            )
    return checks


def _exp10_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-10  Exploration budgets E (Section 1.2): paper formula vs "
        "measured moves",
        ["graph", "n", "e", "map+position", "E", "moves used",
         "map w/o position", "E ", "moves used "],
    )
    for row in report.measurements["rows"]:
        table.add_row(
            row["graph"], row["num_nodes"], row["num_edges"],
            row["with_position"]["name"], row["with_position"]["budget"],
            row["with_position"]["moves"],
            row["without_position"]["name"], row["without_position"]["budget"],
            row["without_position"]["moves"],
        )
    return [
        table.render(),
        "Budgets match the paper's formulas: n-1 (ring/Hamiltonian), e-1 "
        "(Eulerian),",
        "2n-3 (known-map DFS); without a marked position the try-all-DFS "
        "budget is",
        "2n(2n-2) -- the paper quotes n(2n-2), see EXPERIMENTS.md for the "
        "factor-2 note.",
    ]


EXP10 = _register(
    Experiment(
        id="exp10",
        exp_id="EXP-10",
        title="Exploration budgets per knowledge model",
        claim="Exploration budgets per knowledge model",
        source="Section 1.2",
        verdict_text=(
            "reproduced — `E = n-1` on oriented rings, `2n-3` by DFS with "
            "a map, factor-`n` penalty without position"
        ),
        assess=_exp10_assess,
        measure=_exp10_measure,
        render=_exp10_render,
    ),
    order=10,
)


# ----------------------------------------------------------------------
# EXP-11  Delay robustness and the parachute presence model
# ----------------------------------------------------------------------

EXP11_LABEL_SPACE = 4
EXP11_DELAYS = (0, RING_BUDGET // 2, RING_BUDGET, RING_BUDGET + 1,
                2 * RING_BUDGET)
EXP11_QUICK_DELAYS = (0, RING_BUDGET, 2 * RING_BUDGET)
EXP11_PRESENCE_DELAYS = (0, 5, RING_BUDGET)


def _exp11_scenarios(quick: bool):
    delays = EXP11_QUICK_DELAYS if quick else EXP11_DELAYS
    units = [
        (
            f"{algorithm}-d{delay}",
            ring_scenario(algorithm, EXP11_LABEL_SPACE, delays=(delay,)),
        )
        for algorithm in ("cheap", "fast")
        for delay in delays
    ]
    for presence in ("from-start", "parachute"):
        units.append(
            (
                f"presence-{presence}",
                ring_scenario(
                    "fast", EXP11_LABEL_SPACE,
                    delays=EXP11_PRESENCE_DELAYS, presence=presence,
                ),
            )
        )
    return units


def _exp11_assess(ctx: ExperimentContext) -> list[Check]:
    checks = [
        item
        for item in _bound_checks(ctx)
        # The parachute model may delay meetings that relied on finding a
        # sleeping agent, so its TIME bound is the slackened one below;
        # the cost bound is unaffected and re-added unslackened.
        if not item.name.startswith("presence-parachute")
    ]
    parachute = ctx.result("presence-parachute")
    slack = max(EXP11_PRESENCE_DELAYS)
    checks.append(
        check(
            "parachute model stays within the bound plus the max delay",
            parachute["max_time"] <= parachute["time_bound"] + slack,
            f"max_time={parachute['max_time']} <= "
            f"{parachute['time_bound']}+{slack}",
        )
    )
    checks.append(
        check(
            "presence-parachute: cost within bound",
            parachute["cost_within_bound"],
            f"max_cost={parachute['max_cost']} <= {parachute['cost_bound']}",
        )
    )
    return checks


def _exp11_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "EXP-11  Delay robustness: worst time/cost vs wake-up delay tau "
        f"(ring-{RING_SIZE}, L = {EXP11_LABEL_SPACE})",
        ["algorithm", "tau", "worst time", "time bound", "worst cost",
         "cost bound"],
    )
    presence_rows = []
    for unit in report.units:
        res = unit["result"]
        if unit["key"].startswith("presence-"):
            presence_rows.append((unit["key"], res))
            continue
        table.add_row(
            res["algorithm"], unit["scenario"]["delays"][0],
            res["max_time"], res["time_bound"],
            res["max_cost"], res["cost_bound"],
        )
    table2 = Table(
        "EXP-11b  Presence models (Conclusion): complexities unchanged",
        ["model", "worst time", "worst cost"],
    )
    for key, res in presence_rows:
        model = key.removeprefix("presence-")
        suffix = (
            " (paper's primary)" if model == "from-start" else " (alternative)"
        )
        table2.add_row(model + suffix, res["max_time"], res["max_cost"])
    return [table.render(), table2.render()]


EXP11 = _register(
    Experiment(
        id="exp11",
        exp_id="EXP-11",
        title="Delay robustness and the parachute model",
        claim="Delay robustness; parachute model",
        source="Conclusion",
        verdict_text=(
            "reproduced — bounds uniform in delay; parachute differences "
            "confined to pre-wake meetings"
        ),
        assess=_exp11_assess,
        scenarios=_exp11_scenarios,
        render=_exp11_render,
    ),
    order=11,
)


# ----------------------------------------------------------------------
# EXP-12  E-driven vs D-driven baselines
# ----------------------------------------------------------------------

EXP12_RING_SIZE = 48
EXP12_LABEL_SPACE = 8
EXP12_PAIRS = ((1, 2), (5, 6), (7, 8))
EXP12_DISTANCES = (1, 2, 4, 8, 16, 24)
EXP12_QUICK_DISTANCES = (1, 4, 24)


def _exp12_worst_time_at_distance(ring, factory, distance):
    worst = 0
    for labels in EXP12_PAIRS:
        for start_b in (distance, EXP12_RING_SIZE - distance):
            result = simulate_rendezvous(
                ring, factory, labels=labels,
                starts=(0, start_b % EXP12_RING_SIZE),
            )
            if not result.met:
                raise AssertionError(f"no meeting: {labels} D={distance}")
            worst = max(worst, result.time)
    return worst


def _exp12_measure(quick: bool) -> Mapping[str, Any]:
    distances = EXP12_QUICK_DISTANCES if quick else EXP12_DISTANCES
    ring = oriented_ring(EXP12_RING_SIZE)
    zigzag = RingZigzag(EXP12_RING_SIZE, EXP12_LABEL_SPACE)
    fast = FastSimultaneous(
        RingExploration(EXP12_RING_SIZE), EXP12_LABEL_SPACE
    )
    rows = {
        f"D{distance}": {
            "zigzag_time": _exp12_worst_time_at_distance(ring, zigzag, distance),
            "fast_time": _exp12_worst_time_at_distance(ring, fast, distance),
        }
        for distance in distances
    }
    return {"distances": list(distances), "rows": rows}


def _exp12_assess(ctx: ExperimentContext) -> list[Check]:
    distances = ctx.measurements["distances"]
    rows = ctx.measurements["rows"]
    zig_times = [rows[f"D{d}"]["zigzag_time"] for d in distances]
    fast_times = [rows[f"D{d}"]["fast_time"] for d in distances]
    return [
        check(
            "zigzag time grows with the start distance D",
            zig_times[0] < zig_times[-1],
            f"D={distances[0]}: {zig_times[0]} < D={distances[-1]}: "
            f"{zig_times[-1]}",
        ),
        check(
            "Fast's time is essentially flat in D (schedule ignores D)",
            max(fast_times) <= 2 * min(fast_times),
            f"max={max(fast_times)} <= 2*min={2 * min(fast_times)}",
        ),
        check(
            "zigzag wins for adjacent starts",
            zig_times[0] < fast_times[0],
            f"{zig_times[0]} < {fast_times[0]}",
        ),
    ]


def _exp12_render(report: ExperimentReport) -> list[str]:
    table = Table(
        f"EXP-12  Distance sensitivity on the oriented {EXP12_RING_SIZE}-ring "
        f"(L = {EXP12_LABEL_SPACE}): zigzag is D-driven, Fast is E-driven",
        ["initial distance D", "zigzag worst time", "Fast worst time",
         "winner"],
    )
    for distance in report.measurements["distances"]:
        row = report.measurements["rows"][f"D{distance}"]
        winner = "zigzag" if row["zigzag_time"] < row["fast_time"] else "Fast"
        table.add_row(distance, row["zigzag_time"], row["fast_time"], winner)
    return [
        table.render(),
        "The zigzag time rises with D while Fast's stays near its E log L",
        "schedule: the paper's benchmarks are exploration-driven by design,",
        "which is what its lower bounds formalise.",
    ]


EXP12 = _register(
    Experiment(
        id="exp12",
        exp_id="EXP-12",
        title="E-driven vs distance-driven baselines",
        claim="E-driven vs D-driven baselines",
        source="context, ref [26]",
        verdict_text=(
            "contextual — paper's algorithms pay `Theta(E)` regardless of "
            "start distance, as discussed around ref [26]"
        ),
        assess=_exp12_assess,
        measure=_exp12_measure,
        render=_exp12_render,
    ),
    order=12,
)


# ----------------------------------------------------------------------
# EXT-ABL  Ablations: each construction detail is load-bearing
# ----------------------------------------------------------------------

ABLATIONS_LABEL_SPACE = 6
ABLATIONS_SHORT_WAIT_DELAYS = (0, 2, 7, 13)
ABLATIONS_NO_DOUBLING_DELAYS = (0, 5, RING_BUDGET)
#: Delay 2 is where the halved wait actually breaks (the window in which
#: a delayed agent's exploration misses the still-waiting one).
ABLATIONS_QUICK_SHORT_WAIT_DELAYS = (0, 2)
ABLATIONS_QUICK_NO_DOUBLING_DELAYS = (0, 5)


def _ablations_count_failures(graph, algorithm, delays, horizon_factor=6):
    failures = []
    total = 0
    label_space = ABLATIONS_LABEL_SPACE
    for a, b in itertools.permutations(range(1, label_space + 1), 2):
        for start_b in range(1, graph.num_nodes):
            for delay in delays:
                total += 1
                horizon = horizon_factor * max(
                    algorithm.schedule_length(a), algorithm.schedule_length(b)
                ) + delay
                result = simulate_rendezvous(
                    graph, algorithm, labels=(a, b), starts=(0, start_b),
                    delay=delay, max_rounds=horizon,
                )
                if not result.met:
                    failures.append([a, b, start_b, delay])
    return {
        "failures": len(failures),
        "total": total,
        "first_counterexample": failures[0] if failures else None,
    }


def _ablations_measure(quick: bool) -> Mapping[str, Any]:
    ring = oriented_ring(RING_SIZE)
    ring_exploration = RingExploration(RING_SIZE)
    star = star_graph(6)
    star_exploration = KnownMapDFS(star)
    short_wait_delays = (
        ABLATIONS_QUICK_SHORT_WAIT_DELAYS if quick
        else ABLATIONS_SHORT_WAIT_DELAYS
    )
    no_doubling_delays = (
        ABLATIONS_QUICK_NO_DOUBLING_DELAYS if quick
        else ABLATIONS_NO_DOUBLING_DELAYS
    )
    real = Fast(ring_exploration, ABLATIONS_LABEL_SPACE)
    ablated = FastNoDoubling(ring_exploration, ABLATIONS_LABEL_SPACE)
    return {
        "no-delimiter": {
            "detail": "01 delimiter (prefix-freeness)",
            "algorithm": "Fast",
            "graph": f"ring-{RING_SIZE}",
            **_ablations_count_failures(
                ring,
                FastNoDelimiter(ring_exploration, ABLATIONS_LABEL_SPACE),
                delays=(0,),
            ),
        },
        "short-wait": {
            "detail": "wait 2lE (not lE)",
            "algorithm": "Cheap",
            "graph": "star-6",
            **_ablations_count_failures(
                star,
                CheapShortWait(star_exploration, ABLATIONS_LABEL_SPACE),
                delays=short_wait_delays,
            ),
        },
        "no-doubling": {
            "detail": "bit doubling in T",
            "algorithm": "Fast",
            "graph": f"ring-{RING_SIZE}",
            **_ablations_count_failures(
                ring, ablated, delays=no_doubling_delays
            ),
        },
        "schedule_rounds": {
            "fast": real.schedule_length(ABLATIONS_LABEL_SPACE),
            "fast_no_doubling": ablated.schedule_length(ABLATIONS_LABEL_SPACE),
        },
    }


def _ablations_assess(ctx: ExperimentContext) -> list[Check]:
    measurements = ctx.measurements
    return [
        check(
            "removing the delimiter breaks prefix label pairs",
            measurements["no-delimiter"]["failures"] > 0,
            f"{measurements['no-delimiter']['failures']} non-meeting configs",
        ),
        check(
            "halving the wait breaks delayed starts",
            measurements["short-wait"]["failures"] > 0,
            f"{measurements['short-wait']['failures']} non-meeting configs",
        ),
        check(
            "removing bit doubling shows no counterexample at this scale",
            measurements["no-doubling"]["failures"] == 0,
            f"0 of {measurements['no-doubling']['total']} configs fail "
            "(documented negative result)",
        ),
    ]


def _ablations_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "Ablations: remove one construction detail, run the adversary",
        ["removed detail", "algorithm", "graph", "non-meeting configs",
         "configs searched", "first counterexample (a,b,start,delay)"],
    )
    for key in ("no-delimiter", "short-wait", "no-doubling"):
        row = report.measurements[key]
        first = row["first_counterexample"]
        table.add_row(
            row["detail"], row["algorithm"], row["graph"],
            row["failures"], row["total"],
            "-" if first is None else tuple(first),
        )
    rounds = report.measurements["schedule_rounds"]
    return [
        table.render(),
        "The delimiter and the 2lE wait are load-bearing: removing either",
        "yields concrete non-meeting executions.  The bit-doubling has no",
        "counterexample at this scale -- it is what makes the containment",
        "argument of Proposition 2.2 airtight for every graph and delay, at",
        f"a ~2x schedule cost ({rounds['fast']} vs "
        f"{rounds['fast_no_doubling']} rounds for label "
        f"{ABLATIONS_LABEL_SPACE}).",
    ]


ABLATIONS = _register(
    Experiment(
        id="ablations",
        exp_id="EXT-ABL",
        title="Ablations of Section 2's construction details",
        claim="Each construction detail of Section 2 is load-bearing",
        source="Section 2 (ablation study)",
        verdict_text=(
            "reproduced — the delimiter and the 2lE wait are load-bearing; "
            "bit-doubling shows no counterexample at this scale"
        ),
        assess=_ablations_assess,
        measure=_ablations_measure,
        render=_ablations_render,
    ),
    order=13,
)


# ----------------------------------------------------------------------
# EXT-MEM  Memory accounting of Section 1.2
# ----------------------------------------------------------------------

MEMORY_LABEL_SPACE = 64
MEMORY_RING_SIZE = 64
MEMORY_STAR_SIZE = 16
MEMORY_UXS_STAR_SIZE = 6
MEMORY_UXS_SEED = 1


def _memory_measure(quick: bool) -> Mapping[str, Any]:
    profiles = []
    ring_algorithm = Fast(
        RingExploration(MEMORY_RING_SIZE), MEMORY_LABEL_SPACE
    )
    profiles.append(
        profile(
            f"oriented ring n={MEMORY_RING_SIZE} (knows n)",
            ring_size_bits(MEMORY_RING_SIZE),
            ring_algorithm.schedule_length(MEMORY_LABEL_SPACE),
            MEMORY_LABEL_SPACE,
        )
    )
    star = star_graph(MEMORY_STAR_SIZE)
    star_algorithm = Fast(KnownMapDFS(star), MEMORY_LABEL_SPACE)
    schedule = star_algorithm.schedule_length(MEMORY_LABEL_SPACE)
    profiles.append(
        profile(
            f"star n={MEMORY_STAR_SIZE}, DFS walk as port sequence",
            dfs_walk_bits(star), schedule, MEMORY_LABEL_SPACE,
        )
    )
    profiles.append(
        profile(
            f"star n={MEMORY_STAR_SIZE}, full port-labeled map",
            map_bits(star), schedule, MEMORY_LABEL_SPACE,
        )
    )
    small = star_graph(MEMORY_UXS_STAR_SIZE)
    sequence = build_verified_uxs([small], rng=random.Random(MEMORY_UXS_SEED))
    uxs_schedule = Fast(
        KnownMapDFS(small), MEMORY_LABEL_SPACE
    ).schedule_length(MEMORY_LABEL_SPACE)
    profiles.append(
        profile(
            f"star n={MEMORY_UXS_STAR_SIZE}, stored verified UXS "
            "(substitution)",
            uxs_bits(len(sequence), small.max_degree()), uxs_schedule,
            MEMORY_LABEL_SPACE,
        )
    )
    return {
        "profiles": [
            {
                "scenario": item.scenario,
                "exploration_bits": item.exploration_bits,
                "counter_bits": item.counter_bits,
                "total_bits": item.total_bits,
            }
            for item in profiles
        ]
    }


def _memory_assess(ctx: ExperimentContext) -> list[Check]:
    profiles = ctx.measurements["profiles"]
    ring, walk, full_map = profiles[0], profiles[1], profiles[2]
    return [
        check(
            "ring representation is smaller than the DFS walk",
            ring["exploration_bits"] < walk["exploration_bits"],
            f"{ring['exploration_bits']} < {walk['exploration_bits']} bits",
        ),
        check(
            "DFS walk is smaller than the full port-labeled map",
            walk["exploration_bits"] < full_map["exploration_bits"],
            f"{walk['exploration_bits']} < {full_map['exploration_bits']} bits",
        ),
    ]


def _memory_render(report: ExperimentReport) -> list[str]:
    table = Table(
        "Section 1.2 memory accounting: exploration representation dominates",
        ["scenario", "exploration bits", "counter bits (log E + log L)",
         "total bits"],
    )
    for item in report.measurements["profiles"]:
        table.add_row(
            item["scenario"], item["exploration_bits"], item["counter_bits"],
            item["total_bits"],
        )
    return [
        table.render(),
        "Counters stay logarithmic in E and L in every scenario; stored UXS",
        "trades Reingold's O(log m) working space for plain storage (see",
        "DESIGN.md, Substitutions).",
    ]


MEMORY = _register(
    Experiment(
        id="memory",
        exp_id="EXT-MEM",
        title="Agent memory accounting",
        claim="Agent memory per knowledge scenario (Section 1.2 discussion)",
        source="Section 1.2",
        verdict_text=(
            "reproduced — counters stay logarithmic; the exploration "
            "representation dominates"
        ),
        assess=_memory_assess,
        measure=_memory_measure,
        render=_memory_render,
    ),
    order=14,
)


# ----------------------------------------------------------------------
# EXT-GATH  k-agent gathering under merge semantics
# ----------------------------------------------------------------------

GATHERING_LABEL_SPACE = 8
GATHERING_KS = (2, 3, 4)
GATHERING_QUICK_KS = (2, 3)
#: Every 3rd label subset -- enough spread without the full combinatorial
#: blow-up (the bench's historical stride).
GATHERING_SUBSET_STRIDE = 3


def _gathering_worst(algorithm, ring, k):
    worst_time = worst_cost = 0
    label_sets = list(
        itertools.combinations(range(1, GATHERING_LABEL_SPACE + 1), k)
    )[::GATHERING_SUBSET_STRIDE]
    for labels in label_sets:
        starts = tuple((i * (RING_SIZE // k)) % RING_SIZE for i in range(k))
        result = gather(ring, algorithm, labels, starts)
        if not result.gathered:
            raise AssertionError(f"not gathered: {labels} {starts}")
        worst_time = max(worst_time, result.time)
        worst_cost = max(worst_cost, result.cost)
    return worst_time, worst_cost


def _gathering_measure(quick: bool) -> Mapping[str, Any]:
    ks = GATHERING_QUICK_KS if quick else GATHERING_KS
    ring = oriented_ring(RING_SIZE)
    exploration = RingExploration(RING_SIZE)
    rows = []
    for algorithm in (
        CheapSimultaneous(exploration, GATHERING_LABEL_SPACE),
        FastSimultaneous(exploration, GATHERING_LABEL_SPACE),
    ):
        for k in ks:
            time, cost = _gathering_worst(algorithm, ring, k)
            rows.append(
                {
                    "algorithm": algorithm.name,
                    "k": k,
                    "time": time,
                    "cost": cost,
                    "two_agent_time_bound": algorithm.time_bound(),
                }
            )
    return {"rows": rows}


def _gathering_assess(ctx: ExperimentContext) -> list[Check]:
    return [
        check(
            f"{row['algorithm']} k={row['k']}: gathering within the "
            "two-agent time bound",
            row["time"] <= row["two_agent_time_bound"],
            f"time={row['time']} <= {row['two_agent_time_bound']}",
        )
        for row in ctx.measurements["rows"]
    ]


def _gathering_render(report: ExperimentReport) -> list[str]:
    table = Table(
        f"Extension: k-agent gathering (merge semantics) on ring-{RING_SIZE}, "
        f"L = {GATHERING_LABEL_SPACE}",
        ["algorithm", "k", "worst gather time", "worst cost",
         "2-agent time bound"],
    )
    for row in report.measurements["rows"]:
        table.add_row(
            row["algorithm"], row["k"], row["time"], row["cost"],
            row["two_agent_time_bound"],
        )
    return [
        table.render(),
        "Gathering time never exceeds the two-agent bound regardless of k:",
        "all leaders run their schedules from round 1, so any two surviving",
        "groups replicate the two-agent execution of their leaders.",
    ]


GATHERING = _register(
    Experiment(
        id="gathering",
        exp_id="EXT-GATH",
        title="k-agent gathering extension",
        claim=(
            "Pairwise-correct simultaneous algorithms gather k agents "
            "within the two-agent time bound"
        ),
        source="extension (merge semantics)",
        verdict_text=(
            "reproduced — k-agent gathering stays within the two-agent "
            "time bound"
        ),
        assess=_gathering_assess,
        measure=_gathering_measure,
        render=_gathering_render,
    ),
    order=15,
)


# ----------------------------------------------------------------------
# EXT-OPEN  The Conclusion's open problem: the interior of the curve
# ----------------------------------------------------------------------

OPEN_PROBLEM_LABEL_SPACE = 4096
OPEN_PROBLEM_WEIGHTS = (1, 2, 3, 4, 5, 6)
OPEN_PROBLEM_QUICK_LABEL_SPACE = 256
OPEN_PROBLEM_QUICK_WEIGHTS = (1, 2, 3)


def _open_problem_grid(quick: bool) -> tuple[int, tuple[int, ...]]:
    if quick:
        return OPEN_PROBLEM_QUICK_LABEL_SPACE, OPEN_PROBLEM_QUICK_WEIGHTS
    return OPEN_PROBLEM_LABEL_SPACE, OPEN_PROBLEM_WEIGHTS


def _open_problem_scenarios(quick: bool):
    label_space, weights = _open_problem_grid(quick)
    return [
        (
            f"w{weight}",
            ring_scenario(
                "fwr-sim", label_space, weight=weight,
                label_pairs=adversarial_pairs(label_space),
            ),
        )
        for weight in weights
    ]


def _open_problem_measure(quick: bool) -> Mapping[str, Any]:
    label_space, weights = _open_problem_grid(quick)
    return {
        "label_space": label_space,
        "weights": list(weights),
        "label_length": {
            f"w{weight}": smallest_t(label_space, weight) for weight in weights
        },
    }


def _open_problem_assess(ctx: ExperimentContext) -> list[Check]:
    weights = ctx.measurements["weights"]
    w1_time = ctx.result(f"w{weights[0]}")["max_time"]
    w3_time = ctx.result(f"w{weights[2]}")["max_time"]
    return [
        check(
            f"w={weights[0]} -> w={weights[2]} is a big time win",
            w1_time > w3_time,
            f"time(w={weights[0]})={w1_time} > time(w={weights[2]})={w3_time}",
        )
    ]


def _open_problem_render(report: ExperimentReport) -> list[str]:
    label_space = report.measurements["label_space"]
    table = Table(
        "Open problem (Conclusion): the interior curve traced by "
        f"FastWithRelabeling(w), L = {label_space}",
        ["w", "t = |new label|", "worst cost", "cost/E", "worst time",
         "time/E"],
    )
    for unit in report.units:
        res = unit["result"]
        budget = res["exploration_budget"]
        table.add_row(
            unit["scenario"]["algorithm"]["weight"],
            report.measurements["label_length"][unit["key"]],
            res["max_cost"], f"{res['max_cost'] / budget:.1f}",
            res["max_time"], f"{res['max_time'] / budget:.1f}",
        )
    return [
        table.render(),
        "Each row is an achievable (cost, time) point; whether this curve is",
        "optimal between the two proven endpoints is exactly the paper's open",
        "problem.  The diminishing returns pattern (t = L^(1/w) flattens fast)",
        "suggests most of the curve's value sits at small w.",
    ]


OPEN_PROBLEM = _register(
    Experiment(
        id="open-problem",
        exp_id="EXT-OPEN",
        title="The interior of the tradeoff curve",
        claim=(
            "FastWithRelabeling(w) traces achievable interior points of "
            "the open tradeoff curve"
        ),
        source="Conclusion (open problem)",
        verdict_text=(
            "reproduced — the interior curve shows diminishing returns in w"
        ),
        assess=_open_problem_assess,
        scenarios=_open_problem_scenarios,
        measure=_open_problem_measure,
        render=_open_problem_render,
    ),
    order=16,
)


__all__ = [
    "ABLATIONS",
    "EXP01",
    "EXP02",
    "EXP03",
    "EXP04",
    "EXP05",
    "EXP06",
    "EXP07",
    "EXP08",
    "EXP09",
    "EXP10",
    "EXP11",
    "EXP12",
    "GATHERING",
    "MEMORY",
    "OPEN_PROBLEM",
    "RING_BUDGET",
    "RING_SIZE",
    "adversarial_pairs",
    "ring_scenario",
]
