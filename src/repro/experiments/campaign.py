"""The campaign runner: execute registered experiments through the API.

A :class:`Campaign` takes any subset of the registered experiments and
runs each one's Scenario grid through :meth:`repro.api.Scenario.run` --
one shared executor for the whole campaign, so a ``--workers N`` process
pool is paid for once -- plus its extra measurements, producing one
canonical :class:`~repro.experiments.base.ExperimentReport` per
experiment.  Reports carry no run provenance, so a campaign's JSON is
byte-identical across engines, worker counts and cache states; the
per-experiment files written by :meth:`CampaignResult.write_reports` are
what :mod:`tools.render_experiments` regenerates the EXPERIMENTS.md
verdict table from.
"""

from __future__ import annotations

# repro: allow-file(REP001) -- campaign timing feeds only the `timing`
# sections that canonical_dict()/strip_timing remove; the byte-identity
# CI gate compares reports with them stripped, proving they stay inert.

import os
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api import canonical_json, resolve_store
from repro.experiments.base import Experiment, ExperimentContext, ExperimentReport
from repro.obs.events import strip_timing
from repro.obs.telemetry import resolve_telemetry
from repro.registry import EXPERIMENTS
from repro.runtime.executor import Executor, make_executor
from repro.runtime.spec import thaw_value
from repro.runtime.store import DEFAULT_CACHE_DIR, StoreBackend

#: Where ``python -m repro experiments run`` drops per-experiment reports.
DEFAULT_REPORT_DIR = os.path.join(DEFAULT_CACHE_DIR, "experiments")

#: The verdict recorded when one or more checks fail.
FAILED_VERDICT = "FAILED"


def resolve_experiment(ref: "str | Experiment") -> Experiment:
    """The :class:`Experiment` for an id (or a pass-through instance).

    Unknown ids raise :class:`repro.registry.SpecError` naming the
    experiment registry and the registered choices.
    """
    if isinstance(ref, Experiment):
        return ref
    return EXPERIMENTS.get(ref)


def all_experiments() -> list[Experiment]:
    """Every registered experiment, in campaign (registration ``order``)."""
    entries = EXPERIMENTS.entries()
    return [
        entry.target
        for entry in sorted(
            entries, key=lambda e: (e.metadata.get("order", 1_000), e.name)
        )
    ]


def run_experiment(
    experiment: "str | Experiment",
    *,
    quick: bool = False,
    engine: str = "auto",
    workers: int | None = None,
    cache: "bool | str | StoreBackend | None" = None,
    cache_dir: str | None = None,
    backend: str | None = None,
    shard_count: int | None = None,
    executor: Executor | None = None,
    cluster: Any = None,
    telemetry: Any = None,
) -> ExperimentReport:
    """Execute one experiment and return its canonical verdict report.

    Grid units run through :meth:`repro.api.Scenario.run` with the given
    engine/worker/cache routing (an explicit ``executor`` overrides the
    executor axis and stays open -- how :class:`Campaign` shares one pool
    across experiments); the extra measurements always run in-process.
    ``cluster`` (see :meth:`Scenario.run`) instead routes every grid unit
    through the distributed queue -- pass a live
    :class:`~repro.cluster.ClusterExecutor` to share it across units (and
    experiments; it stays open), and leave ``executor``/``workers`` unset.

    The report carries a non-canonical ``timing`` section (total seconds,
    per-unit seconds, measurement seconds), always measured -- telemetry
    merely adds the event narration (an ``experiment`` span wrapping the
    per-unit instrumentation).  The canonical report content is identical
    whatever the telemetry setting.
    """
    experiment = resolve_experiment(experiment)
    tele = resolve_telemetry(telemetry)
    units: list[dict[str, Any]] = []
    unit_timings: list[dict[str, Any]] = []
    started = time.perf_counter()
    with tele.span("experiment", id=experiment.id, exp_id=experiment.exp_id):
        for key, scenario in experiment.scenarios(quick):
            unit_started = time.perf_counter()
            run = scenario.run(
                engine=engine,
                workers=workers,
                cache=cache,
                cache_dir=cache_dir,
                backend=backend,
                shard_count=shard_count,
                executor=executor,
                cluster=cluster,
                telemetry=tele,
            )
            units.append({"key": key, **run.to_dict()})
            unit_timings.append(
                {
                    "key": key,
                    "seconds": round(time.perf_counter() - unit_started, 6),
                }
            )
        measure_started = time.perf_counter()
        # Thaw before assessment so checks and renderers always see the same
        # JSON-shaped data a report loaded back from disk would carry.
        context = ExperimentContext(
            quick=quick,
            units=tuple(units),
            measurements=thaw_value(dict(experiment.measure(quick))),
        )
        measure_seconds = time.perf_counter() - measure_started
        checks = tuple(experiment.assess(context))
    passed = all(item.passed for item in checks)
    return ExperimentReport(
        experiment=experiment.id,
        exp_id=experiment.exp_id,
        claim=experiment.claim,
        source=experiment.source,
        profile="quick" if quick else "full",
        units=context.units,
        measurements=context.measurements,
        checks=checks,
        verdict=experiment.verdict_text if passed else FAILED_VERDICT,
        timing={
            "seconds": round(time.perf_counter() - started, 6),
            "units": unit_timings,
            "measure_seconds": round(measure_seconds, 6),
        },
    )


def render_report(report: ExperimentReport) -> list[str]:
    """Human-readable lines for a report: tables, checks and the verdict.

    The experiment's own renderer (resolved by id, so loaded JSON reports
    render identically to freshly-run ones) produces the
    measured-vs-paper tables; the check list and verdict line are
    appended uniformly.
    """
    entry = EXPERIMENTS.lookup(report.experiment)
    lines: list[str] = []
    if entry is not None and entry.target.render is not None:
        lines.extend(entry.target.render(report))
    for item in report.checks:
        status = "ok  " if item.passed else "FAIL"
        detail = f"  ({item.detail})" if item.detail else ""
        lines.append(f"  [{status}] {item.name}{detail}")
    lines.append(
        f"{report.exp_id} [{report.profile}] verdict: {report.verdict}"
    )
    return lines


@dataclass(frozen=True)
class CampaignResult:
    """The reports of one campaign run, in campaign order.

    ``timing`` (and every report's own ``timing``) is non-canonical:
    :meth:`canonical_dict`/:meth:`canonical_json` strip them, and those
    are what byte-identity comparisons (serial vs. parallel, telemetry on
    vs. off) must use -- ``python -m repro telemetry strip`` does the
    same for files on disk.
    """

    profile: str
    reports: tuple[ExperimentReport, ...]
    timing: "dict[str, Any] | None" = field(default=None, compare=False)

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    def report(self, experiment_id: str) -> ExperimentReport:
        for item in self.reports:
            if item.experiment == experiment_id:
                return item
        raise KeyError(
            f"no report for {experiment_id!r}; have "
            f"{[item.experiment for item in self.reports]}"
        )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "profile": self.profile,
            "reports": [report.to_dict() for report in self.reports],
            "passed": self.passed,
        }
        if self.timing is not None:
            payload["timing"] = self.timing
        return payload

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def canonical_dict(self) -> dict[str, Any]:
        """The campaign content minus every ``timing`` section."""
        return strip_timing(self.to_dict())

    def canonical_json(self) -> str:
        return canonical_json(self.canonical_dict())

    def timing_table(self) -> list[str]:
        """Human-readable per-experiment timing lines (empty when unknown)."""
        if self.timing is None:
            return []
        rows = self.timing.get("experiments", [])
        if not rows:
            return []
        width = max(len(row["experiment"]) for row in rows)
        lines = [
            f"  {row['experiment']:<{width}}  {row['seconds']:>9.3f}s"
            for row in rows
        ]
        lines.append(f"  {'total':<{width}}  {self.timing['seconds']:>9.3f}s")
        return lines

    def write_reports(self, directory: str = DEFAULT_REPORT_DIR) -> list[str]:
        """Write one ``<experiment-id>.json`` per report; returns paths.

        Reports for experiments that are no longer registered (renamed or
        deleted ids) are purged from the managed directory -- they could
        never be refreshed and would otherwise leak stale verdicts into
        ``load_reports`` and the generated EXPERIMENTS.md table.  Reports
        of *registered* experiments outside this campaign's subset are
        left alone, so incremental subset runs compose.
        """
        os.makedirs(directory, exist_ok=True)
        registered = {experiment.id for experiment in all_experiments()}
        for name in sorted(os.listdir(directory)):
            stem, ext = os.path.splitext(name)
            if ext == ".json" and stem not in registered:
                os.remove(os.path.join(directory, name))
        paths = []
        for report in self.reports:
            path = os.path.join(directory, f"{report.experiment}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
            paths.append(path)
        return paths


def load_reports(directory: str = DEFAULT_REPORT_DIR) -> list[ExperimentReport]:
    """Load every ``*.json`` report under ``directory``, campaign-ordered.

    Reports for experiments no longer registered sort after the known
    ones (by id), so stale directories still load.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(
            f"no report directory {directory!r}; run "
            "`python -m repro experiments run` first"
        )
    order = {exp.id: index for index, exp in enumerate(all_experiments())}
    reports = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as handle:
            reports.append(ExperimentReport.from_json(handle.read()))
    reports.sort(key=lambda r: (order.get(r.experiment, len(order)), r.experiment))
    return reports


@dataclass(frozen=True)
class Campaign:
    """A subset of the registered experiments plus how to execute them.

    ``experiments=None`` means *all of them*, in campaign order.  The
    engine/worker/cache knobs mirror :meth:`repro.api.Scenario.run`
    (``backend="sqlite"`` points every experiment at one shared SQLite
    warehouse -- see :mod:`repro.runtime.store`); a
    worker count creates ONE executor shared by every grid unit of every
    experiment, so the pool is spun up once per campaign; ``cluster``
    (exclusive with ``workers`` -- the cluster config carries its own
    worker count) analogously creates ONE
    :class:`~repro.cluster.ClusterExecutor` shared by the whole campaign,
    each sweep getting its own run directory.  ``telemetry``
    (``None``, a :class:`~repro.obs.telemetry.Telemetry`, or a bare sink)
    narrates the whole campaign under one ``campaign`` root span with
    per-experiment progress; the result's canonical content is identical
    with or without it.
    """

    experiments: Sequence["str | Experiment"] | None = None
    quick: bool = False
    engine: str = "auto"
    workers: int | None = None
    cache: "bool | str | StoreBackend | None" = None
    cache_dir: str | None = None
    backend: str | None = None
    shard_count: int | None = None
    cluster: Any = None
    telemetry: Any = None

    def resolved(self) -> list[Experiment]:
        if self.experiments is None:
            return all_experiments()
        return [resolve_experiment(ref) for ref in self.experiments]

    def run(self) -> CampaignResult:
        experiments = self.resolved()
        tele = resolve_telemetry(self.telemetry)
        # Resolve the store once so every experiment shares one cache
        # handle, mirroring the shared executor.  With backend="sqlite"
        # the whole campaign publishes into one shared warehouse.
        store = resolve_store(self.cache, self.cache_dir, self.backend)
        cluster = None
        owns_cluster = False
        if self.cluster is not None and self.cluster is not False:
            if self.workers is not None:
                raise ValueError(
                    "cluster carries its own worker count; "
                    "workers configures the in-process pool"
                )
            from repro.cluster import ClusterExecutor, resolve_cluster

            cluster = resolve_cluster(self.cluster, telemetry=tele)
            owns_cluster = not isinstance(self.cluster, ClusterExecutor)
        executor = (
            make_executor(self.workers)
            if self.workers is not None and cluster is None
            else None
        )
        started = time.perf_counter()
        rows: list[dict[str, Any]] = []
        try:
            reports = []
            with tele.span("campaign", experiments=len(experiments)):
                for position, experiment in enumerate(experiments):
                    report = run_experiment(
                        experiment,
                        quick=self.quick,
                        engine=self.engine,
                        cache=store,
                        shard_count=self.shard_count,
                        executor=executor,
                        cluster=cluster,
                        telemetry=tele,
                    )
                    reports.append(report)
                    rows.append(
                        {
                            "experiment": report.experiment,
                            "seconds": (
                                report.timing["seconds"]
                                if report.timing is not None
                                else 0.0
                            ),
                        }
                    )
                    tele.count("experiments.completed")
                    tele.progress("experiments", position + 1, len(experiments))
        finally:
            if executor is not None:
                executor.close()
            if cluster is not None and owns_cluster:
                cluster.close()
        return CampaignResult(
            profile="quick" if self.quick else "full",
            reports=tuple(reports),
            timing={
                "seconds": round(time.perf_counter() - started, 6),
                "experiments": rows,
            },
        )


__all__ = [
    "Campaign",
    "CampaignResult",
    "DEFAULT_REPORT_DIR",
    "FAILED_VERDICT",
    "all_experiments",
    "load_reports",
    "render_report",
    "resolve_experiment",
    "run_experiment",
]
