"""Experiment bundles: the paper's experiments as declarative, registered data.

An :class:`Experiment` packages everything one row of DESIGN.md's
experiment index needs, as data resolvable by id through
:data:`repro.registry.EXPERIMENTS` -- exactly like graph families and
algorithms:

* the **Scenario grid** it sweeps (a function of the ``quick`` profile,
  so CI runs a shrunk grid through the very same definitions);
* the **extra measurements** that are not adversary sweeps (lower-bound
  certificates, baseline simulations, memory accounting);
* the **paper-bound assertions** -- closed-form inequalities or
  certificate facts -- that turn measurements into a verdict;
* the **renderer** producing the human-readable measured-vs-paper tables.

The campaign runner (:mod:`repro.experiments.campaign`) executes the grid
through :meth:`repro.api.Scenario.run`, so every experiment transparently
inherits engine auto-selection (batch / compiled / reactive), sharded
parallel workers and ``.repro_cache/`` resumability.  The resulting
:class:`ExperimentReport` is canonical JSON -- byte-identical across
engines, worker counts and cache states -- carrying the claim, the
measured numbers, the argmax configurations and the pass/fail checks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.api import Scenario, canonical_json
from repro.obs.events import strip_timing
from repro.runtime.spec import thaw_value

#: The two grid profiles an experiment can run under.
PROFILES = ("full", "quick")


@dataclass(frozen=True)
class Check:
    """One paper-bound assertion, evaluated against the measurements.

    ``detail`` carries the measured numbers behind the boolean (bound
    margins, argmax values), so a failing report explains itself.
    """

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Check":
        return cls(
            name=payload["name"],
            passed=bool(payload["passed"]),
            detail=payload.get("detail", ""),
        )


def check(name: str, passed: Any, detail: str = "") -> Check:
    """Ergonomic :class:`Check` constructor coercing truthiness."""
    return Check(name=name, passed=bool(passed), detail=detail)


@dataclass(frozen=True)
class ExperimentContext:
    """What an experiment's ``assess`` callback sees.

    Deliberately JSON-shaped: ``units`` are the per-scenario report dicts
    (``{"key", "scenario", "result"}``) and ``measurements`` the extra
    measured numbers -- the same data the report serializes -- so checks
    are a pure function of the canonical report content and cannot depend
    on engine, worker count or cache state.
    """

    quick: bool
    units: tuple[dict[str, Any], ...] = ()
    measurements: Mapping[str, Any] = field(default_factory=dict)

    def unit(self, key: str) -> dict[str, Any]:
        for unit in self.units:
            if unit["key"] == key:
                return unit
        raise KeyError(
            f"no unit {key!r}; available: {[u['key'] for u in self.units]}"
        )

    def result(self, key: str) -> dict[str, Any]:
        """The measured sweep result of one grid unit."""
        return self.unit(key)["result"]

    def results(self) -> list[tuple[str, dict[str, Any]]]:
        """All ``(key, result)`` pairs, in grid order."""
        return [(unit["key"], unit["result"]) for unit in self.units]


@dataclass(frozen=True)
class ExperimentReport:
    """The canonical verdict record of one executed experiment.

    Everything here is deterministic report content (claim, measured
    numbers, argmax configurations, bound checks, verdict) -- except
    ``timing``, an explicitly *non-canonical* wall-clock section
    (``compare=False``, excluded from :meth:`canonical_dict`): two
    reports of the same experiment are equal and canonically
    byte-identical however long they took, whoever produced them, with
    telemetry on or off.  Anything comparing report files byte for byte
    must strip ``timing`` first (:func:`repro.obs.strip_timing`, or
    ``python -m repro telemetry strip``).
    """

    experiment: str
    exp_id: str
    claim: str
    source: str
    profile: str
    units: tuple[dict[str, Any], ...]
    measurements: Mapping[str, Any]
    checks: tuple[Check, ...]
    verdict: str
    timing: Mapping[str, Any] | None = field(default=None, compare=False)

    @property
    def passed(self) -> bool:
        return all(item.passed for item in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [item for item in self.checks if not item.passed]

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "experiment": self.experiment,
            "exp_id": self.exp_id,
            "claim": self.claim,
            "source": self.source,
            "profile": self.profile,
            "units": thaw_value(list(self.units)),
            "measurements": thaw_value(dict(self.measurements)),
            "checks": [item.to_dict() for item in self.checks],
            "verdict": self.verdict,
            "passed": self.passed,
        }
        if self.timing is not None:
            payload["timing"] = thaw_value(dict(self.timing))
        return payload

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def canonical_dict(self) -> dict[str, Any]:
        """The report content minus every non-canonical ``timing`` section.

        What the byte-identity invariant quantifies over: equal across
        engines, worker counts, cache states and telemetry settings.
        """
        return strip_timing(self.to_dict())

    def canonical_json(self) -> str:
        return canonical_json(self.canonical_dict())

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentReport":
        known = {
            "experiment", "exp_id", "claim", "source", "profile",
            "units", "measurements", "checks", "verdict", "passed", "timing",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown report fields: {sorted(unknown)}")
        report = cls(
            experiment=payload["experiment"],
            exp_id=payload["exp_id"],
            claim=payload["claim"],
            source=payload["source"],
            profile=payload["profile"],
            units=tuple(payload.get("units", ())),
            measurements=dict(payload.get("measurements", {})),
            checks=tuple(
                Check.from_dict(item) for item in payload.get("checks", ())
            ),
            verdict=payload["verdict"],
            timing=payload.get("timing"),
        )
        if "passed" in payload and bool(payload["passed"]) != report.passed:
            raise ValueError(
                "report 'passed' flag contradicts its checks "
                f"({payload['passed']!r} vs {report.passed!r})"
            )
        return report

    @classmethod
    def from_json(cls, text: str) -> "ExperimentReport":
        return cls.from_dict(json.loads(text))


def _no_scenarios(quick: bool) -> Sequence[tuple[str, Scenario]]:
    return ()


def _no_measurements(quick: bool) -> Mapping[str, Any]:
    return {}


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: grids, assertions and renderer as data.

    ``scenarios(quick)`` yields ``(key, Scenario)`` grid units executed
    through :meth:`repro.api.Scenario.run`; ``measure(quick)`` computes
    the non-sweep measurements (must be deterministic and JSON-able);
    ``assess(context)`` turns both into :class:`Check`\\ s; ``render``
    (optional) turns a finished report into the measured-vs-paper tables.
    ``verdict_text`` is the one-line verdict recorded in EXPERIMENTS.md
    when every check passes.
    """

    id: str
    exp_id: str
    title: str
    claim: str
    source: str
    verdict_text: str
    assess: Callable[[ExperimentContext], Sequence[Check]]
    scenarios: Callable[[bool], Sequence[tuple[str, Scenario]]] = _no_scenarios
    measure: Callable[[bool], Mapping[str, Any]] = _no_measurements
    render: Callable[[ExperimentReport], Sequence[str]] | None = None

    def __post_init__(self) -> None:
        # Registry re-registration (a provider module re-executing after a
        # failed first import) recognises "the same definition" through
        # __module__/__qualname__; give value-registered instances a
        # stable identity derived from the experiment id.
        object.__setattr__(self, "__qualname__", f"Experiment[{self.id}]")

    @property
    def in_verdict_table(self) -> bool:
        """Whether this experiment is a row of the EXPERIMENTS.md table."""
        return self.exp_id.startswith("EXP-")


__all__ = [
    "Check",
    "Experiment",
    "ExperimentContext",
    "ExperimentReport",
    "PROFILES",
    "check",
]
