"""Registered experiment campaigns: EXP-01…12 (and extensions) as data.

Every experiment from DESIGN.md's index is a declarative
:class:`~repro.experiments.base.Experiment` bundle -- Scenario grids,
paper-bound assertions and a table renderer -- registered by id in
:data:`repro.registry.EXPERIMENTS` and executed by the
:class:`~repro.experiments.campaign.Campaign` runner through
:meth:`repro.api.Scenario.run`, inheriting engine auto-selection,
sharded parallel workers and run-store resumability.  Reports are
canonical JSON, byte-identical across engines and worker counts;
``python -m repro experiments {list,run,report}`` is the CLI surface and
``tools/render_experiments.py`` regenerates the EXPERIMENTS.md verdict
table from the report files.

Quickstart::

    from repro.experiments import Campaign

    result = Campaign(["exp01", "exp03"], quick=True).run()
    assert result.passed
    print(result.report("exp03").to_json())
"""

from repro.experiments.base import (
    Check,
    Experiment,
    ExperimentContext,
    ExperimentReport,
    check,
)
from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    DEFAULT_REPORT_DIR,
    all_experiments,
    load_reports,
    render_report,
    resolve_experiment,
    run_experiment,
)
from repro.registry import EXPERIMENTS

__all__ = [
    "Campaign",
    "CampaignResult",
    "Check",
    "DEFAULT_REPORT_DIR",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentContext",
    "ExperimentReport",
    "all_experiments",
    "check",
    "load_reports",
    "render_report",
    "resolve_experiment",
    "run_experiment",
]
