"""The declarative Scenario API: one front door to the whole library.

Every claim the paper makes -- and every workload this repository runs --
is a point on the same axes: *graph family* x *algorithm* x *knowledge
model* x *presence model* x *delay grid*.  A :class:`Scenario` is that
point written down as plain data; a :class:`Sweep` is a grid of them.
Both resolve names through the registries in :mod:`repro.registry`, build
to :mod:`repro.runtime` job specs, serialize to dicts/JSON, and run
through a single :meth:`Scenario.run` entry point that routes small jobs
to the in-process serial executor and large ones to the sharded process
pool, and runs schedule-driven algorithms on the pruned cube engine
(:mod:`repro.sim.cube`, when NumPy is installed) or the compiled
trajectory engine (:mod:`repro.sim.compiled`) instead of the round
simulator -- with byte-identical reports whichever way a sweep is
executed.

Quickstart::

    from repro.api import Scenario

    scenario = Scenario(graph="ring", graph_params={"n": 12},
                        algorithm="fast", label_space=8)
    outcome = scenario.run()                   # engine="auto"
    print(outcome.row.max_time, "<=", outcome.row.time_bound)
    print(outcome.to_json())                   # canonical, machine-readable

The object world stays available underneath: :func:`sweep_objects` sweeps
live ``(algorithm, graph)`` instances that have no registry name (ablation
variants, baselines), and :func:`run_job` drives a raw
:class:`~repro.runtime.spec.JobSpec` for callers that already hold one.
"""

from __future__ import annotations

import inspect
import itertools
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, resolve_telemetry
from repro.registry import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    KNOWLEDGE_MODELS,
    PRESENCE_MODELS,
    SpecError,
)
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.runtime.runner import RunStats, execute_job
from repro.runtime.spec import (
    AlgorithmSpec,
    GraphSpec,
    JobSpec,
    canonical_json,
    ensure_hashable_param,
    freeze_value,
    resolve_exploration,
    thaw_value,
)
from repro.runtime.store import (
    BACKENDS,
    DEFAULT_CACHE_DIR,
    StoreBackend,
    resolve_backend,
)
from repro.sim import batch as sim_batch
from repro.sim.adversary import (
    ConfigCube,
    Configuration,
    all_label_pairs,
    default_horizon,
    worst_case_search,
)
from repro.sim.metrics import RendezvousResult
from repro.sim.simulator import simulate_rendezvous

#: With ``engine="auto"`` and no explicit worker count, configuration
#: spaces at least this large route to the process pool.
AUTO_PARALLEL_THRESHOLD = 20_000

_ENGINES = ("auto", "batch", "compiled", "cube", "parallel", "serial")


def resolve_sim_engine(engine: str, algorithm_name: str) -> str:
    """The per-configuration substrate an ``engine`` choice implies.

    ``"serial"`` and ``"parallel"`` are explicit executor choices and keep
    the reactive simulator.  ``"compiled"`` demands the compiled
    trajectory engine, ``"batch"`` the vectorized NumPy engine and
    ``"cube"`` the cross-label tensor engine (:mod:`repro.sim.cube`); all
    three raise unless the registered algorithm declares ``is_oblivious``
    (the :class:`~repro.core.base.RendezvousAlgorithm` flag marking a
    schedule-driven behaviour), and the NumPy engines additionally raise
    a loud :class:`~repro.sim.batch.BatchUnavailableError` when NumPy is
    not importable.  ``"auto"`` selects the fastest sound substrate:
    ``"cube"`` when the flag is declared and NumPy is importable,
    ``"compiled"`` when only the flag is, and the reactive simulator for
    everything else -- sound any way, since the engines produce
    byte-identical reports wherever they all apply.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {list(_ENGINES)}")
    if engine in ("serial", "parallel"):
        return "reactive"
    oblivious = bool(
        getattr(ALGORITHMS.entry(algorithm_name).target, "is_oblivious", False)
    )
    if engine in ("batch", "compiled", "cube"):
        if not oblivious:
            raise ValueError(
                f"algorithm {algorithm_name!r} does not declare is_oblivious; "
                f"engine={engine!r} needs a schedule-driven algorithm"
            )
        if engine in ("batch", "cube"):
            sim_batch.require_numpy(engine)
        return engine
    if not oblivious:
        return "reactive"
    return "cube" if sim_batch.numpy_available() else "compiled"


def _reject_nonzero_delays(
    algorithm_name: str, requires_simultaneous: bool, delays: Sequence[int]
) -> None:
    """The one statement of the simultaneous-start rule, shared by every
    entry point (object sweeps, job specs, scenario validation and single
    simulations): such algorithms are only correct at delay 0."""
    if requires_simultaneous and any(d != 0 for d in delays):
        raise ValueError(
            f"{algorithm_name} requires simultaneous start; "
            f"delays {tuple(delays)} invalid"
        )


# ----------------------------------------------------------------------
# Sweep rows (the measured-vs-claimed record every table is built from)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepRow:
    """One sweep result: measured extremes vs. declared bounds."""

    algorithm: str
    graph: str
    num_nodes: int
    exploration_budget: int
    label_space: int
    max_time: int
    time_bound: int
    max_cost: int
    cost_bound: int
    executions: int
    worst_time_config: Configuration
    worst_cost_config: Configuration

    @property
    def time_within_bound(self) -> bool:
        return self.max_time <= self.time_bound

    @property
    def cost_within_bound(self) -> bool:
        return self.max_cost <= self.cost_bound

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "num_nodes": self.num_nodes,
            "exploration_budget": self.exploration_budget,
            "label_space": self.label_space,
            "max_time": self.max_time,
            "time_bound": self.time_bound,
            "time_within_bound": self.time_within_bound,
            "max_cost": self.max_cost,
            "cost_bound": self.cost_bound,
            "cost_within_bound": self.cost_within_bound,
            "executions": self.executions,
            "worst_time_config": _config_dict(self.worst_time_config),
            "worst_cost_config": _config_dict(self.worst_cost_config),
        }


def _config_dict(config: Configuration) -> dict[str, Any]:
    return {
        "labels": list(config.labels),
        "starts": list(config.starts),
        "delay": config.delay,
    }


def _row_from_report(algorithm, graph, graph_name, report) -> SweepRow:
    """Turn a worst-case report into a :class:`SweepRow`, or raise.

    Accepts both :class:`~repro.sim.adversary.WorstCaseReport` and
    :class:`~repro.runtime.report.MergedReport` (the shared shape: argmax
    records exposing ``.config``, plus ``failures`` and ``executions``), so
    the serial and runtime paths cannot drift apart.
    """
    if report.failures:
        first = report.failures[0]
        raise AssertionError(
            f"{algorithm.name} failed to meet in {len(report.failures)} "
            f"configurations, e.g. labels={first.labels} starts={first.starts} "
            f"delay={first.delay}"
        )
    if report.worst_time is None or report.worst_cost is None:
        raise ValueError("empty configuration space: nothing to sweep")
    return SweepRow(
        algorithm=algorithm.name,
        graph=graph_name,
        num_nodes=graph.num_nodes,
        exploration_budget=algorithm.exploration_budget,
        label_space=algorithm.label_space,
        max_time=report.max_time,
        time_bound=algorithm.time_bound(),
        max_cost=report.max_cost,
        cost_bound=algorithm.cost_bound(),
        executions=report.executions,
        worst_time_config=report.worst_time.config,
        worst_cost_config=report.worst_cost.config,
    )


# ----------------------------------------------------------------------
# The two execution substrates: live objects, and job specs
# ----------------------------------------------------------------------


def sweep_objects(
    algorithm: RendezvousAlgorithm,
    graph: PortLabeledGraph,
    graph_name: str,
    delays: Sequence[int] = (0,),
    label_pairs: Iterable[tuple[int, int]] | None = None,
    fix_first_start: bool = False,
    sample: int | None = None,
    engine: str = "reactive",
    telemetry: Telemetry = NULL_TELEMETRY,
    prune: bool | None = None,
) -> SweepRow:
    """Adversarial worst-case search over live ``(algorithm, graph)`` objects.

    The object-world escape hatch: for instances with no registry name
    (ablations, baselines, hand-built graphs), where a :class:`Scenario`
    cannot describe the job by value.  ``fix_first_start=True`` is only
    sound on vertex-transitive graphs; callers assert that themselves.
    Simultaneous-start-only algorithms reject non-zero delays loudly
    rather than producing invalid rows.  ``engine`` is forwarded to
    :func:`~repro.sim.adversary.worst_case_search` (``"auto"`` runs
    objects declaring ``is_oblivious`` on the cube engine when NumPy is
    importable, on compiled trajectories otherwise); the row is identical
    whichever engine runs.  The configuration space rides as a
    :class:`~repro.sim.adversary.ConfigCube` -- the axes product every
    engine iterates lazily and the cube engine answers by whole tensor
    passes.  ``prune`` is the cube engine's pruning knob (``None``
    resolves via ``REPRO_PRUNE``); pruned and unpruned rows are
    byte-identical.
    """
    _reject_nonzero_delays(
        algorithm.name, algorithm.requires_simultaneous_start, delays
    )
    if label_pairs is None:
        label_pairs = all_label_pairs(algorithm.label_space)

    def horizon(config: Configuration) -> int:
        return default_horizon(algorithm, config)

    report = worst_case_search(
        graph,
        algorithm,
        ConfigCube.make(
            graph,
            label_pairs,
            delays=delays,
            fix_first_start=fix_first_start,
        ),
        max_rounds=horizon,
        sample=sample,
        engine=engine,
        telemetry=telemetry,
        prune=prune,
    )
    return _row_from_report(algorithm, graph, graph_name, report)


def run_job(
    spec: JobSpec,
    graph_name: str | None = None,
    executor: Executor | None = None,
    store: StoreBackend | None = None,
    shard_count: int | None = None,
    graph: PortLabeledGraph | None = None,
    algorithm: RendezvousAlgorithm | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> tuple[SweepRow, RunStats]:
    """Runtime-backed worst-case sweep of a raw :class:`JobSpec`.

    Sharded, parallelisable, cached -- and byte-identical to the serial
    enumeration (the merge tie-breaking guarantees identical argmax
    configurations).  ``graph`` and ``algorithm`` may be passed when the
    caller has already built them from the spec, to avoid rebuilding
    (they must match the spec).
    """
    graph = graph if graph is not None else spec.graph.build()
    algorithm = algorithm if algorithm is not None else spec.algorithm.build(graph)
    _reject_nonzero_delays(
        algorithm.name, algorithm.requires_simultaneous_start, spec.delays
    )
    if spec.engine in ("compiled", "batch", "cube") and not getattr(
        algorithm, "is_oblivious", False
    ):
        raise ValueError(
            f"{algorithm.name} does not declare is_oblivious; "
            f"a {spec.engine}-engine job spec needs a schedule-driven algorithm"
        )
    if spec.engine in ("batch", "cube"):
        # Fail fast with the install hint here rather than deep inside a
        # worker process (every pool worker would raise the same error).
        sim_batch.require_numpy(spec.engine)
    outcome = execute_job(
        spec,
        executor=executor,
        store=store,
        shard_count=shard_count,
        graph=graph,
        telemetry=telemetry,
    )
    name = graph_name if graph_name is not None else spec.graph.label
    row = _row_from_report(algorithm, graph, name, outcome.report)
    return row, outcome.stats


# ----------------------------------------------------------------------
# Engine and cache routing
# ----------------------------------------------------------------------


def resolve_engine(
    engine: str, workers: int | None, config_space_size: int
) -> Executor:
    """Map an ``engine`` choice (and optional worker count) to an executor.

    ``"serial"`` and ``"parallel"`` are explicit; ``"auto"``,
    ``"compiled"``, ``"batch"`` and ``"cube"`` (which constrain the
    simulation substrate, not the executor -- see
    :func:`resolve_sim_engine`) follow the worker count when one is
    given, and otherwise route spaces of at least
    :data:`AUTO_PARALLEL_THRESHOLD` configurations to the pool.
    """
    if engine == "serial":
        if workers not in (None, 1):
            raise ValueError(
                f"engine='serial' runs in-process; workers={workers} is contradictory"
            )
        return SerialExecutor()
    if engine == "parallel":
        return ParallelExecutor(workers)
    if engine in ("auto", "batch", "compiled", "cube"):
        if workers is not None:
            return make_executor(workers)
        if config_space_size >= AUTO_PARALLEL_THRESHOLD:
            return ParallelExecutor()
        return SerialExecutor()
    raise ValueError(f"unknown engine {engine!r}; choose from {list(_ENGINES)}")


def resolve_store(
    cache: bool | str | StoreBackend | None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> StoreBackend | None:
    """Map the ``cache`` argument of :meth:`Scenario.run` to a store.

    ``False`` disables caching, ``True`` opens the default store (or
    ``cache_dir``), a path opens a store there, and a
    :class:`StoreBackend` instance (e.g. a :class:`RunStore`) is used
    as-is.  ``cache=None`` follows ``cache_dir``: a bare
    ``run(cache_dir=...)`` caches there rather than silently not caching.

    The backend defaults to JSONL and is selected either by ``backend``
    (a :data:`repro.runtime.store.BACKENDS` name) or by prefixing a path
    with the backend name -- ``cache="sqlite:results"`` opens the SQLite
    warehouse under ``results/``.  A ready-made store instance already
    *is* its backend, so combining one with ``backend`` is an error.
    """
    if isinstance(cache, StoreBackend):
        if cache_dir is not None:
            raise ValueError("pass either a RunStore or cache_dir, not both")
        if backend is not None:
            raise ValueError(
                "a store instance already fixes its backend; "
                "pass either the instance or backend, not both"
            )
        return cache
    if cache is None:
        return None if cache_dir is None else resolve_backend(backend, cache_dir)
    if cache is False:
        if cache_dir is not None:
            raise ValueError("cache=False contradicts cache_dir")
        if backend is not None:
            raise ValueError("cache=False contradicts backend")
        return None
    if cache is True:
        return resolve_backend(
            backend, cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR
        )
    if cache_dir is not None:
        raise ValueError("pass either a cache path or cache_dir, not both")
    scheme, sep, rest = cache.partition(":")
    if sep and scheme in BACKENDS:
        if backend is not None and backend != scheme:
            raise ValueError(
                f"cache={cache!r} contradicts backend={backend!r}"
            )
        return resolve_backend(scheme, rest if rest else DEFAULT_CACHE_DIR)
    return resolve_backend(backend, cache)


# ----------------------------------------------------------------------
# Scenario: one point on the paper's axes, as plain data
# ----------------------------------------------------------------------


def _reject_unknown_keys(where: str, payload: Mapping[str, Any], known: set) -> None:
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {where} fields: {sorted(unknown)}")


def _required_key(where: str, payload: Mapping[str, Any], key: str) -> Any:
    if key not in payload:
        raise ValueError(f"{where} dict is missing the required {key!r} field")
    return payload[key]


def _parse_graph_dict(where: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Constructor kwargs from a ``{"family": ..., "params": {...}}`` dict."""
    kwargs = {
        "graph": _required_key(where, payload, "family"),
        "graph_params": payload.get("params", {}),
    }
    _reject_unknown_keys(where, payload, {"family", "params"})
    return kwargs


def _parse_algorithm_dict(where: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Constructor kwargs from a ``{"name": ..., "label_space": ...}`` dict."""
    kwargs = {"algorithm": _required_key(where, payload, "name")}
    for key in ("label_space", "weight"):
        if key in payload:
            kwargs[key] = payload[key]
    _reject_unknown_keys(where, payload, {"name", "label_space", "weight"})
    return kwargs


def _params_pairs(params: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize graph parameters to the canonical sorted-pair form.

    Mapping-valued parameters (even nested inside sequences) are rejected
    via the same :func:`ensure_hashable_param` guard as
    :meth:`GraphSpec.make`: they would survive freezing as dicts and
    break the spec hashability the runtime workers memoise on.
    """
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = (tuple(pair) for pair in params)
    pairs = []
    for key, value in items:
        ensure_hashable_param(str(key), value)
        pairs.append((str(key), freeze_value(value)))
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class Scenario:
    """A declarative rendezvous scenario: the paper's axes as plain data.

    Every name resolves through a registry and is validated at
    construction, so a typo fails immediately with a :class:`SpecError`
    listing the valid choices -- not deep inside a worker process.

    ``fix_first_start=None`` (the default) means *derive it*: pin the
    first agent's start exactly when the graph family's registry entry is
    marked vertex-transitive, where pinning provably loses no worst case.
    """

    graph: str
    algorithm: str
    graph_params: Any = ()
    label_space: int = 8
    weight: int = 2
    knowledge: str = "map-with-position"
    exploration: str | None = None
    presence: str = "from-start"
    delays: Sequence[int] = (0,)
    label_pairs: Sequence[tuple[int, int]] | None = None
    fix_first_start: bool | None = None
    horizon: int | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        set_(self, "graph_params", _params_pairs(self.graph_params))
        set_(self, "delays", tuple(int(d) for d in self.delays))
        if self.label_pairs is not None:
            set_(
                self,
                "label_pairs",
                tuple((int(a), int(b)) for a, b in self.label_pairs),
            )
        family = GRAPH_FAMILIES.entry(self.graph)
        # Fail fast on a params/family mismatch: without this check the
        # TypeError would only surface at build time, possibly as an
        # opaque exception inside a worker process.
        try:
            inspect.signature(family.target).bind(
                **{key: thaw_value(value) for key, value in self.graph_params}
            )
        except TypeError as err:
            raise ValueError(
                f"invalid parameters for graph family {self.graph!r}: {err}"
            ) from None
        entry = ALGORITHMS.entry(self.algorithm)
        KNOWLEDGE_MODELS.entry(self.knowledge)
        if self.exploration is not None:
            resolve_exploration(self.exploration, self.knowledge)
        PRESENCE_MODELS.entry(self.presence)
        if self.horizon is not None and self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.label_space < 2:
            raise ValueError(
                f"rendezvous needs at least two labels, got L={self.label_space}"
            )
        if any(d < 0 for d in self.delays):
            raise ValueError(f"delays must be non-negative, got {self.delays}")
        if self.label_pairs is not None:
            for a, b in self.label_pairs:
                if not (1 <= a <= self.label_space and 1 <= b <= self.label_space):
                    raise ValueError(
                        f"label pair ({a}, {b}) outside the label space "
                        f"1..{self.label_space}"
                    )
                if a == b:
                    raise ValueError(f"label pair ({a}, {b}) must be distinct")
        if not self.delays:
            raise ValueError("at least one delay is required")
        # The class attribute is the single source of truth for the
        # simultaneous-start requirement (no duplicated registry metadata).
        _reject_nonzero_delays(
            self.algorithm,
            getattr(entry.target, "requires_simultaneous_start", False),
            self.delays,
        )
        if self.weight < 1:
            raise ValueError(f"weight must be a positive integer, got {self.weight}")
        # Unlike AlgorithmSpec, the weight is NOT pinned for unweighted
        # algorithms here: a sweep may override the algorithm axis to a
        # weighted one later and must keep the weight the user wrote.
        # job_spec() still canonicalises, so run-store keys are shared.

    # ------------------------------------------------------------------
    # Resolution into the spec and object worlds
    # ------------------------------------------------------------------

    @property
    def graph_spec(self) -> GraphSpec:
        return GraphSpec(self.graph, self.graph_params)

    @property
    def algorithm_spec(self) -> AlgorithmSpec:
        return AlgorithmSpec(
            name=self.algorithm,
            label_space=self.label_space,
            weight=self.weight,
            knowledge=self.knowledge,
            exploration=self.exploration,
        )

    @property
    def resolved_fix_first_start(self) -> bool:
        if self.fix_first_start is not None:
            return self.fix_first_start
        entry = GRAPH_FAMILIES.entry(self.graph)
        return bool(entry.metadata.get("vertex_transitive", False))

    def job_spec(self) -> JobSpec:
        """The runtime :class:`JobSpec` describing this scenario's sweep."""
        return JobSpec(
            algorithm=self.algorithm_spec,
            graph=self.graph_spec,
            delays=self.delays,
            label_pairs=self.label_pairs,
            fix_first_start=self.resolved_fix_first_start,
            presence=self.presence,
            horizon=self.horizon,
        )

    def build_graph(self) -> PortLabeledGraph:
        return self.graph_spec.build()

    def build_algorithm(
        self, graph: PortLabeledGraph | None = None
    ) -> RendezvousAlgorithm:
        graph = graph if graph is not None else self.build_graph()
        return self.algorithm_spec.build(graph)

    def config_space_size(self, graph: PortLabeledGraph | None = None) -> int:
        return self.job_spec().config_space_size(graph)

    @property
    def label(self) -> str:
        """Short display name, e.g. ``fast on ring(n=12)``."""
        return f"{self.algorithm} on {self.graph_spec.label}"

    # ------------------------------------------------------------------
    # Serialization: dicts and JSON
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "graph": self.graph_spec.to_dict(),
            "algorithm": {
                "name": self.algorithm,
                "label_space": self.label_space,
                "weight": self.weight,
            },
            "knowledge": self.knowledge,
            "exploration": self.exploration,
            "presence": self.presence,
            "delays": list(self.delays),
            "label_pairs": (
                None
                if self.label_pairs is None
                else [list(pair) for pair in self.label_pairs]
            ),
            "fix_first_start": self.fix_first_start,
            "horizon": self.horizon,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output or a flat dict.

        Accepts the canonical nested form (``graph``/``algorithm`` as
        sub-dicts) and the flat constructor-keyword form interchangeably,
        so hand-written configuration files stay terse.
        """
        payload = dict(payload)
        for required in ("graph", "algorithm"):
            if required not in payload:
                raise ValueError(
                    f"scenario dict is missing the required {required!r} field"
                )
        kwargs: dict[str, Any] = {}
        graph = payload.pop("graph")
        if isinstance(graph, Mapping):
            kwargs.update(_parse_graph_dict("graph", graph))
        else:
            kwargs["graph"] = graph
            kwargs["graph_params"] = payload.pop("graph_params", {})
        algorithm = payload.pop("algorithm")
        if isinstance(algorithm, Mapping):
            kwargs.update(_parse_algorithm_dict("algorithm", algorithm))
        else:
            kwargs["algorithm"] = algorithm
        for field_ in (
            "label_space",
            "weight",
            "knowledge",
            "exploration",
            "presence",
            "delays",
            "label_pairs",
            "fix_first_start",
            "horizon",
        ):
            if field_ in payload:
                value = payload.pop(field_)
                if value is not None:
                    kwargs[field_] = value
        if payload:
            raise ValueError(f"unknown scenario fields: {sorted(payload)}")
        return cls(**kwargs)

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def with_overrides(self, **overrides: Any) -> "Scenario":
        """A copy with the given axes replaced (the :class:`Sweep` step).

        The ``graph`` override accepts a bare family name (keeping the
        current parameters -- construction fails fast if they do not fit
        the new family; use the dict form to cross family boundaries) or
        a ``{"family": ..., "params": {...}}`` dict (replacing them);
        ``algorithm`` accepts the analogous forms.
        """
        kwargs: dict[str, Any] = {}
        for key, value in overrides.items():
            if key == "graph" and isinstance(value, Mapping):
                kwargs.update(_parse_graph_dict("graph override", value))
            elif key == "algorithm" and isinstance(value, Mapping):
                kwargs.update(_parse_algorithm_dict("algorithm override", value))
            else:
                kwargs[key] = value
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def simulate(
        self,
        labels: tuple[int, int],
        starts: tuple[int, int],
        delay: int = 0,
        max_rounds: int | None = None,
        graph: PortLabeledGraph | None = None,
        algorithm: RendezvousAlgorithm | None = None,
    ) -> RendezvousResult:
        """Run one concrete execution of this scenario's algorithm.

        ``max_rounds`` defaults to the scenario's ``horizon`` (when set),
        so replaying a sweep's configuration agrees with the sweep about
        the round budget.  ``graph``/``algorithm`` may be passed when the
        caller has already built them from this scenario, to avoid
        rebuilding (they must match the scenario).
        """
        if max_rounds is None:
            max_rounds = self.horizon
        graph = graph if graph is not None else self.build_graph()
        algorithm = (
            algorithm if algorithm is not None else self.build_algorithm(graph)
        )
        _reject_nonzero_delays(
            algorithm.name, algorithm.requires_simultaneous_start, (delay,)
        )
        return simulate_rendezvous(
            graph,
            algorithm,
            labels=labels,
            starts=starts,
            delay=delay,
            max_rounds=max_rounds,
            presence=PRESENCE_MODELS.get(self.presence),
        )

    def run(
        self,
        engine: str = "auto",
        workers: int | None = None,
        cache: bool | str | StoreBackend | None = None,
        cache_dir: str | None = None,
        backend: str | None = None,
        shard_count: int | None = None,
        graph_name: str | None = None,
        graph: PortLabeledGraph | None = None,
        executor: Executor | None = None,
        cluster: Any = None,
        telemetry: Any = None,
    ) -> "ScenarioRun":
        """Execute the worst-case sweep this scenario describes.

        The single entry point: ``engine`` picks the executor (see
        :func:`resolve_engine`) *and* the per-configuration substrate (see
        :func:`resolve_sim_engine`) -- under the default ``"auto"``,
        schedule-driven algorithms run on the pruned cube engine
        (compiled trajectories when NumPy is absent), everything else on
        the reactive simulator.  ``cache`` picks the
        run store and ``backend`` its on-disk format -- ``"jsonl"`` (the
        default) or ``"sqlite"`` (see :func:`resolve_store`).  Reports are byte-identical
        across engines, worker counts and shard granularities.  ``graph``
        may be passed when the caller already built it from this scenario.
        An explicit ``executor`` overrides ``engine``/``workers`` for the
        executor axis only and stays open (the caller owns it -- how
        :meth:`Sweep.run` shares one pool across grid points); executors
        resolved here are closed before returning.

        ``cluster`` routes execution through the fault-tolerant
        distributed queue instead (see
        :func:`repro.cluster.resolve_cluster` for the accepted shapes:
        a local worker count, a :class:`~repro.cluster.ClusterConfig`,
        or a live :class:`~repro.cluster.ClusterExecutor`).  It replaces
        the executor axis only -- engine/cache semantics are unchanged,
        and the run is byte-identical to every other execution route.
        ``cluster`` excludes ``executor`` and ``workers`` (the cluster
        config carries its own worker count); executors resolved from a
        config here are closed before returning, a passed-in
        ``ClusterExecutor`` stays open.

        ``telemetry`` accepts ``None`` (off, the default), a
        :class:`~repro.obs.telemetry.Telemetry`, or a bare sink (see
        :func:`~repro.obs.telemetry.resolve_telemetry`).  It narrates the
        run -- a ``scenario.run`` root span, an ``engine.resolved`` event,
        the runtime's shard/store/merge instrumentation -- and never
        changes it: the returned run is byte-identical with telemetry on
        or off.
        """
        tele = resolve_telemetry(telemetry)
        spec = self.job_spec()
        sim_engine = resolve_sim_engine(engine, self.algorithm)
        if sim_engine != spec.engine:
            spec = replace(spec, engine=sim_engine)
        graph = graph if graph is not None else spec.graph.build()
        if cluster is not None and cluster is not False:
            if executor is not None:
                raise ValueError("pass either cluster or executor, not both")
            if workers is not None:
                raise ValueError(
                    "cluster carries its own worker count; "
                    "workers configures the in-process pool"
                )
            if engine in ("serial", "parallel"):
                raise ValueError(
                    f"engine={engine!r} pins the in-process executor and "
                    f"contradicts cluster execution"
                )
            # Imported lazily: repro.cluster builds on the runtime and api
            # layers, so a top-level import would be circular.
            from repro.cluster import ClusterExecutor, resolve_cluster

            executor = resolve_cluster(cluster, telemetry=tele)
            owned = not isinstance(cluster, ClusterExecutor)
            if graph_name is not None:
                # Recorded in job.json so an adopting coordinator labels
                # its merged row exactly as this run would have.
                executor.publish_graph_name = graph_name
        else:
            owned = executor is None
            if executor is None:
                executor = resolve_engine(
                    engine, workers, spec.config_space_size(graph)
                )
        store = resolve_store(cache, cache_dir, backend)
        try:
            with tele.span(
                "scenario.run", algorithm=self.algorithm, graph=self.graph
            ):
                tele.event(
                    "engine.resolved",
                    requested=engine,
                    sim_engine=sim_engine,
                    executor=type(executor).__name__,
                    workers=workers,
                    cached=store is not None,
                )
                row, stats = run_job(
                    spec,
                    graph_name=graph_name,
                    executor=executor,
                    store=store,
                    shard_count=shard_count,
                    graph=graph,
                    telemetry=tele,
                )
        finally:
            if owned:
                executor.close()
        return ScenarioRun(scenario=self, row=row, stats=stats)


@dataclass(frozen=True)
class ScenarioRun:
    """The outcome of :meth:`Scenario.run`: the row, plus how it was made.

    :meth:`to_dict`/:meth:`to_json` cover only the deterministic report
    (scenario + measurements) -- byte-identical across engines and cache
    states; the run-provenance :class:`RunStats` stay a separate
    attribute (and :meth:`runtime_dict`) because cache hits legitimately
    differ between reruns of the same scenario.
    """

    scenario: Scenario
    row: SweepRow
    stats: RunStats

    def to_dict(self) -> dict[str, Any]:
        return {"scenario": self.scenario.to_dict(), "result": self.row.to_dict()}

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def runtime_dict(self) -> dict[str, Any]:
        return asdict(self.stats)


# ----------------------------------------------------------------------
# Sweep: a Scenario grid
# ----------------------------------------------------------------------


_SWEEPABLE = {field_.name for field_ in fields(Scenario)}


@dataclass(frozen=True)
class Sweep:
    """A grid of scenarios: a base point plus axes of alternatives.

    ``grid`` maps scenario field names to the values to sweep; the
    cartesian product is enumerated with the *last* axis varying fastest
    (``itertools.product`` order), deterministically.  The ``graph`` axis
    additionally accepts ``{"family": ..., "params": {...}}`` entries so
    one sweep can cross family boundaries.
    """

    base: Scenario
    grid: Any = ()

    def __post_init__(self) -> None:
        if isinstance(self.grid, Mapping):
            items = self.grid.items()
        else:
            items = ((axis, values) for axis, values in self.grid)
        pairs = []
        for axis, values in items:
            if isinstance(values, (str, bytes)):
                # Sweep.over(base, graph="ring") would otherwise expand
                # character by character into nonsense grid points.
                raise ValueError(
                    f"sweep axis {axis!r} needs a list of values, "
                    f"got the bare string {values!r}"
                )
            pairs.append((axis, tuple(freeze_value(value) for value in values)))
        normalized = tuple(pairs)
        seen: set[str] = set()
        for axis, values in normalized:
            if axis not in _SWEEPABLE:
                raise ValueError(
                    f"unknown sweep axis {axis!r}; choose from {sorted(_SWEEPABLE)}"
                )
            if axis in seen:
                raise ValueError(f"sweep axis {axis!r} listed twice")
            seen.add(axis)
            if not values:
                raise ValueError(f"sweep axis {axis!r} has no values")
        object.__setattr__(self, "grid", normalized)

    @classmethod
    def over(cls, base: Scenario, **axes: Sequence[Any]) -> "Sweep":
        """Keyword-argument construction: ``Sweep.over(base, label_space=[4, 8])``."""
        return cls(base, axes)

    def __len__(self) -> int:
        total = 1
        for _, values in self.grid:
            total *= len(values)
        return total

    def scenarios(self) -> Iterator[Scenario]:
        """All grid points, deterministically ordered."""
        axes = [axis for axis, _ in self.grid]
        for combo in itertools.product(*(values for _, values in self.grid)):
            yield self.base.with_overrides(**dict(zip(axes, combo)))

    def to_dict(self) -> dict[str, Any]:
        # The grid serialises as a list of [axis, values] pairs, not a
        # dict: axis order determines the expansion order, and canonical
        # JSON sorts dict keys (which would silently reorder the sweep).
        return {
            "base": self.base.to_dict(),
            "grid": [[axis, thaw_value(list(values))] for axis, values in self.grid],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Sweep":
        unknown = set(payload) - {"base", "grid"}
        if unknown:
            raise ValueError(f"unknown sweep fields: {sorted(unknown)}")
        return cls(
            Scenario.from_dict(_required_key("sweep", payload, "base")),
            payload.get("grid", {}),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))

    def run(
        self,
        engine: str = "auto",
        workers: int | None = None,
        cache: bool | str | StoreBackend | None = None,
        cache_dir: str | None = None,
        shard_count: int | None = None,
        cluster: Any = None,
        telemetry: Any = None,
    ) -> "SweepRun":
        """Run every grid point and collect the outcomes, in grid order.

        Grid points that route to the process pool share ONE pool (created
        lazily at the first point that needs it, closed at the end), so a
        sweep pays process startup once -- whether the pool was requested
        explicitly (``engine="parallel"``, or ``auto`` with a worker
        count) or triggered by a point's configuration-space size under
        the default ``auto``.  ``telemetry`` (resolved as in
        :meth:`Scenario.run`) wraps the whole grid in a ``sweep.run`` span
        and streams per-point progress; one telemetry narrates all points.

        ``cluster`` (see :meth:`Scenario.run`) routes every grid point
        through the distributed queue; a single
        :class:`~repro.cluster.ClusterExecutor` instance (or one resolved
        here from a config) serves all points -- each sweep gets its own
        run directory under the cluster root.
        """
        tele = resolve_telemetry(telemetry)
        shared: ParallelExecutor | None = None
        shared_cluster = None
        owns_cluster = False
        if cluster is not None and cluster is not False:
            from repro.cluster import ClusterExecutor, resolve_cluster

            shared_cluster = resolve_cluster(cluster, telemetry=tele)
            owns_cluster = not isinstance(cluster, ClusterExecutor)
        try:
            runs = []
            with tele.span("sweep.run"):
                scenarios = list(self.scenarios())
                tele.gauge("sweep.grid_points", len(scenarios))
                for position, scenario in enumerate(scenarios):
                    graph = scenario.build_graph()
                    if shared_cluster is not None:
                        runs.append(
                            scenario.run(
                                engine=engine,
                                cache=cache,
                                cache_dir=cache_dir,
                                shard_count=shard_count,
                                graph=graph,
                                cluster=shared_cluster,
                                telemetry=tele,
                            )
                        )
                        tele.progress("grid", position + 1, len(scenarios))
                        continue
                    # Route through resolve_engine itself (single source of
                    # truth for engine selection); its ParallelExecutor is
                    # lazy, so probing costs nothing and the shared pool is
                    # substituted for every point it would route to a pool.
                    routed = resolve_engine(
                        engine, workers, scenario.config_space_size(graph)
                    )
                    executor: Executor | None = None
                    if isinstance(routed, ParallelExecutor):
                        if shared is None:
                            shared = ParallelExecutor(workers)
                        executor = shared
                    runs.append(
                        scenario.run(
                            engine=engine,
                            workers=workers,
                            cache=cache,
                            cache_dir=cache_dir,
                            shard_count=shard_count,
                            graph=graph,
                            executor=executor,
                            telemetry=tele,
                        )
                    )
                    tele.progress("grid", position + 1, len(scenarios))
        finally:
            if shared is not None:
                shared.close()
            if shared_cluster is not None and owns_cluster:
                shared_cluster.close()
        return SweepRun(sweep=self, runs=tuple(runs))


@dataclass(frozen=True)
class SweepRun:
    """Outcomes of a :class:`Sweep`, one :class:`ScenarioRun` per grid point."""

    sweep: Sweep
    runs: tuple[ScenarioRun, ...]

    @property
    def rows(self) -> list[SweepRow]:
        return [run.row for run in self.runs]

    def to_dict(self) -> dict[str, Any]:
        return {
            "sweep": self.sweep.to_dict(),
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())


__all__ = [
    "AUTO_PARALLEL_THRESHOLD",
    "Scenario",
    "ScenarioRun",
    "SpecError",
    "Sweep",
    "SweepRow",
    "SweepRun",
    "canonical_json",
    "resolve_engine",
    "resolve_sim_engine",
    "resolve_store",
    "run_job",
    "sweep_objects",
]
