"""Shard results and their deterministic merge.

Workers return :class:`ShardReport` -- the per-shard extremes as compact
summaries (configuration + measured time/cost + the configuration's global
index), not full traces.  :func:`merge_reports` max-reduces shards into a
:class:`MergedReport`; ties on the measured value are broken by the lowest
global index, which is exactly the record a serial left-to-right
enumeration with strict ``>`` updates would keep.  Parallel and serial
runs therefore produce byte-identical merged reports (compare their
canonical JSON), no matter how the space was sharded or in which order
shards completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.sim.adversary import Configuration


@dataclass(frozen=True)
class ConfigRef:
    """A configuration plus its global index in the sweep's enumeration."""

    index: int
    labels: tuple[int, int]
    starts: tuple[int, int]
    delay: int

    @property
    def config(self) -> Configuration:
        return Configuration(labels=self.labels, starts=self.starts, delay=self.delay)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "labels": list(self.labels),
            "starts": list(self.starts),
            "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConfigRef":
        return cls(
            index=payload["index"],
            labels=tuple(payload["labels"]),
            starts=tuple(payload["starts"]),
            delay=payload["delay"],
        )


@dataclass(frozen=True)
class ExtremeSummary(ConfigRef):
    """A configuration together with the time and cost it produced."""

    time: int
    cost: int

    def to_dict(self) -> dict[str, Any]:
        payload = super().to_dict()
        payload.update(time=self.time, cost=self.cost)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExtremeSummary":
        return cls(
            index=payload["index"],
            labels=tuple(payload["labels"]),
            starts=tuple(payload["starts"]),
            delay=payload["delay"],
            time=payload["time"],
            cost=payload["cost"],
        )


def _better(
    incumbent: ExtremeSummary | None, challenger: ExtremeSummary | None, metric: str
) -> ExtremeSummary | None:
    """Max-reduce step with the serial tie-break (lower index wins ties)."""
    if challenger is None:
        return incumbent
    if incumbent is None:
        return challenger
    a, b = getattr(incumbent, metric), getattr(challenger, metric)
    if b > a or (b == a and challenger.index < incumbent.index):
        return challenger
    return incumbent


@dataclass(frozen=True)
class ShardTiming:
    """How long one shard took, and where the time went.

    The telemetry channel out of worker processes: workers cannot share a
    :class:`~repro.obs.telemetry.Telemetry` with the coordinator, so their
    measurements ride back on the :class:`ShardReport` and the runner
    re-emits them as ``shard.complete`` events.  Never part of equality
    or canonical payloads -- timing is observability data, not a result.
    """

    seconds: float
    table_seconds: float = 0.0
    engine: str = "reactive"
    chunks: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "seconds": self.seconds,
            "table_seconds": self.table_seconds,
            "engine": self.engine,
            "chunks": self.chunks,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardTiming":
        return cls(
            seconds=payload["seconds"],
            table_seconds=payload.get("table_seconds", 0.0),
            engine=payload.get("engine", "reactive"),
            chunks=payload.get("chunks", 0),
        )


@dataclass(frozen=True)
class ShardReport:
    """Result of running one configuration shard ``[lo, hi)``.

    ``timing`` is non-canonical (``compare=False``): two reports of the
    same shard are equal whatever their wall-clock story, and cached
    reports loaded from the store merge identically to fresh ones.
    """

    shard: tuple[int, int]
    executions: int
    worst_time: ExtremeSummary | None
    worst_cost: ExtremeSummary | None
    failures: tuple[ConfigRef, ...] = ()
    timing: ShardTiming | None = field(default=None, compare=False)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "shard": list(self.shard),
            "executions": self.executions,
            "worst_time": None if self.worst_time is None else self.worst_time.to_dict(),
            "worst_cost": None if self.worst_cost is None else self.worst_cost.to_dict(),
            "failures": [failure.to_dict() for failure in self.failures],
        }
        if self.timing is not None:
            payload["timing"] = self.timing.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ShardReport":
        worst_time = payload.get("worst_time")
        worst_cost = payload.get("worst_cost")
        timing = payload.get("timing")
        return cls(
            shard=(payload["shard"][0], payload["shard"][1]),
            executions=payload["executions"],
            worst_time=None if worst_time is None else ExtremeSummary.from_dict(worst_time),
            worst_cost=None if worst_cost is None else ExtremeSummary.from_dict(worst_cost),
            failures=tuple(
                ConfigRef.from_dict(failure) for failure in payload.get("failures", ())
            ),
            timing=None if timing is None else ShardTiming.from_dict(timing),
        )


@dataclass(frozen=True)
class MergedReport:
    """Max-reduce of a sweep's shard reports.

    The summary counterpart of :class:`repro.sim.adversary.WorstCaseReport`:
    same extremes and failure set, but carrying configuration summaries
    (with global indices) instead of full execution traces, plus the
    number of shards that contributed.
    """

    executions: int
    shards: int
    worst_time: ExtremeSummary | None
    worst_cost: ExtremeSummary | None
    failures: tuple[ConfigRef, ...] = ()

    @property
    def max_time(self) -> int:
        if self.worst_time is None:
            raise ValueError("no successful execution recorded")
        return self.worst_time.time

    @property
    def max_cost(self) -> int:
        if self.worst_cost is None:
            raise ValueError("no successful execution recorded")
        return self.worst_cost.cost

    def to_dict(self) -> dict[str, Any]:
        return {
            "executions": self.executions,
            "shards": self.shards,
            "worst_time": None if self.worst_time is None else self.worst_time.to_dict(),
            "worst_cost": None if self.worst_cost is None else self.worst_cost.to_dict(),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MergedReport":
        worst_time = payload.get("worst_time")
        worst_cost = payload.get("worst_cost")
        return cls(
            executions=payload["executions"],
            shards=payload["shards"],
            worst_time=None if worst_time is None else ExtremeSummary.from_dict(worst_time),
            worst_cost=None if worst_cost is None else ExtremeSummary.from_dict(worst_cost),
            failures=tuple(
                ConfigRef.from_dict(failure) for failure in payload.get("failures", ())
            ),
        )


def merge_reports(reports: Iterable[ShardReport]) -> MergedReport:
    """Deterministically combine shard reports, whatever their arrival order.

    Shards are first sorted by their lower bound (shards of one sweep never
    overlap), so failures concatenate in global-index order and the reduce
    visits candidates exactly as the serial loop would.
    """
    ordered: Sequence[ShardReport] = sorted(reports, key=lambda r: r.shard)
    worst_time: ExtremeSummary | None = None
    worst_cost: ExtremeSummary | None = None
    failures: list[ConfigRef] = []
    executions = 0
    for report in ordered:
        worst_time = _better(worst_time, report.worst_time, "time")
        worst_cost = _better(worst_cost, report.worst_cost, "cost")
        failures.extend(report.failures)
        executions += report.executions
    return MergedReport(
        executions=executions,
        shards=len(ordered),
        worst_time=worst_time,
        worst_cost=worst_cost,
        failures=tuple(failures),
    )
