"""Shard planning and the executor layer (serial and process-pool).

Shard boundaries are a function of the configuration-space size only --
*not* of the worker count -- so a sweep cached by a serial run is hit by a
parallel rerun and vice versa, and any worker count replays the same
shards (whichever :class:`repro.runtime.store.StoreBackend` holds them:
the shard plan, like the reports, is backend-agnostic).  Executors yield
shard reports as they complete (the parallel one out of order); callers
that need determinism get it from
:func:`repro.runtime.report.merge_reports`, which is order-insensitive.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, Protocol, Sequence

from repro.runtime.report import ShardReport
from repro.runtime.spec import JobSpec
from repro.runtime.worker import run_shard

#: Default number of shards per sweep.  Fixed (rather than derived from
#: the worker count) so cache entries survive ``--workers`` changes, and
#: large enough to keep a typical pool busy with work-stealing slack.
DEFAULT_SHARD_COUNT = 16


class ShardExecutionError(RuntimeError):
    """A worker process died while executing one shard.

    Wraps the pool's bare ``BrokenProcessPool`` with what the caller
    actually needs: *which* shard was in flight, and that completed
    shards are already persisted -- a cached rerun resumes from them
    rather than starting over.
    """

    def __init__(self, spec: JobSpec, index: int, total: int):
        self.shard = spec.shard
        self.index = index
        bounds = f"[{spec.shard[0]}, {spec.shard[1]})" if spec.shard else "?"
        super().__init__(
            f"worker process died executing shard {index + 1}/{total} "
            f"(configurations {bounds}); completed shards are kept by the "
            f"run store -- rerun with caching enabled (the default --cache) "
            f"to resume, or use `python -m repro cluster run` for "
            f"fault-tolerant execution"
        )


def plan_shards(
    total: int,
    shard_count: int | None = None,
    shard_size: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into contiguous shard bounds.

    With ``shard_size`` set, chunks of that size are cut; otherwise the
    space is split into ``shard_count`` (default 16) near-equal parts.
    Either way no shard is ever empty: ``shard_count`` larger than the
    space clamps to one configuration per shard rather than planning
    zero-width ``[lo, lo)`` shards (which would poison the run store
    with keys no execution ever fills).
    """
    if total < 0:
        raise ValueError(f"configuration-space size must be >= 0, got {total}")
    if shard_count is not None and shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if total == 0:
        return []
    if shard_size is not None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        return [(lo, min(lo + shard_size, total)) for lo in range(0, total, shard_size)]
    count = min(total, shard_count if shard_count is not None else DEFAULT_SHARD_COUNT)
    base, extra = divmod(total, count)
    bounds = []
    lo = 0
    for i in range(count):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class Executor(Protocol):
    """Anything that can turn shard specs into shard reports."""

    def map_shards(self, specs: Sequence[JobSpec]) -> Iterator[ShardReport]:
        ...


class SerialExecutor:
    """Run shards in-process, one after another, in submission order."""

    workers = 1

    def map_shards(self, specs: Sequence[JobSpec]) -> Iterator[ShardReport]:
        for spec in specs:
            yield run_shard(spec)

    def close(self) -> None:
        """Nothing to release; present so callers can close uniformly."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan shards out to a ``ProcessPoolExecutor``.

    Reports are yielded as shards finish, so a caller persisting them to
    the run store checkpoints continuously -- an interrupted run loses at
    most the in-flight shards.  With one worker (or one shard) it degrades
    to the serial path rather than paying pool overhead.

    The pool is created lazily on first use and *reused* across
    :meth:`map_shards` calls, so a sweep over many jobs pays process
    startup once, not once per job.  Call :meth:`close` (or use the
    executor as a context manager) when done; the high-level entry points
    close executors they created themselves.
    """

    def __init__(self, workers: int | None = None):
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"need at least one worker, got {self.workers}")
        self._pool: ProcessPoolExecutor | None = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map_shards(self, specs: Sequence[JobSpec]) -> Iterator[ShardReport]:
        specs = list(specs)
        if self.workers == 1 or len(specs) <= 1:
            yield from SerialExecutor().map_shards(specs)
            return
        pool = self._get_pool()
        submitted = {pool.submit(run_shard, spec): (index, spec)
                     for index, spec in enumerate(specs)}
        pending = set(submitted)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        yield future.result()
                    except BrokenProcessPool:
                        # A dead pool poisons this executor: drop it so a
                        # caller that catches the error and retries gets
                        # a fresh pool instead of the same broken one.
                        self.close()
                        index, spec = submitted[future]
                        raise ShardExecutionError(
                            spec, index, len(specs)
                        ) from None
        finally:
            # An abandoned iteration (break / exception / GeneratorExit)
            # must not leave queued shards burning CPU in the background.
            for future in pending:
                future.cancel()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:
        # Safety net for callers written against the old per-call pool
        # lifetime that never call close(): release worker processes at
        # GC instead of holding them until interpreter exit.
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


def make_executor(workers: int | None) -> "SerialExecutor | ParallelExecutor":
    """The conventional mapping from a ``--workers`` flag to an executor."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
