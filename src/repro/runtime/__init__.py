"""Parallel experiment runtime: sharded adversary search with a run store.

Every number in the paper's tables is the maximum over an adversarial
configuration space (labels x starts x delays).  This package turns that
one-off serial enumeration into sharded, parallel, resumable *runs*:

* :mod:`repro.runtime.spec` -- serializable job specifications
  (:class:`JobSpec` = algorithm descriptor + graph descriptor + sweep
  parameters + an optional configuration-shard slice), with a canonical
  JSON form and a content hash so work units can cross process boundaries
  and key a cache;
* :mod:`repro.runtime.report` -- compact shard results and a deterministic
  max-reduce merge whose tie-breaking (lowest configuration index wins)
  makes parallel output bit-identical to the serial enumeration;
* :mod:`repro.runtime.worker` -- the pure function a worker process runs:
  rebuild the graph and algorithm from the spec, execute one shard;
* :mod:`repro.runtime.executor` -- shard planning plus
  :class:`SerialExecutor` and :class:`ParallelExecutor` (a
  ``ProcessPoolExecutor`` pool);
* :mod:`repro.runtime.store` -- a content-addressed run store under
  ``.repro_cache/`` so repeated sweeps skip completed shards and
  interrupted runs resume where they stopped, with two interchangeable
  backends (append-only JSONL files and an indexed SQLite warehouse)
  plus a query layer answering worst-case questions from stored runs;
* :mod:`repro.runtime.runner` -- :func:`execute_job`, the high-level
  entry point gluing planning, cache lookup, execution and merge.
"""

from repro.runtime.executor import (
    DEFAULT_SHARD_COUNT,
    ParallelExecutor,
    SerialExecutor,
    ShardExecutionError,
    make_executor,
    plan_shards,
)
from repro.runtime.report import (
    ConfigRef,
    ExtremeSummary,
    MergedReport,
    ShardReport,
    merge_reports,
)
from repro.runtime.runner import RunOutcome, RunStats, execute_job
from repro.runtime.spec import AlgorithmSpec, GraphSpec, JobSpec, canonical_json
from repro.runtime.store import (
    BACKENDS,
    CompactionStats,
    JsonlBackend,
    RunStore,
    SqliteBackend,
    StoreBackend,
    StoredRun,
    query_payload,
    query_runs,
    resolve_backend,
)
from repro.runtime.worker import run_shard

__all__ = [
    "AlgorithmSpec",
    "BACKENDS",
    "CompactionStats",
    "ConfigRef",
    "DEFAULT_SHARD_COUNT",
    "ExtremeSummary",
    "GraphSpec",
    "JobSpec",
    "JsonlBackend",
    "MergedReport",
    "ParallelExecutor",
    "RunOutcome",
    "RunStats",
    "RunStore",
    "SerialExecutor",
    "ShardExecutionError",
    "ShardReport",
    "SqliteBackend",
    "StoreBackend",
    "StoredRun",
    "canonical_json",
    "execute_job",
    "make_executor",
    "merge_reports",
    "plan_shards",
    "query_payload",
    "query_runs",
    "resolve_backend",
    "run_shard",
]
