"""Backend protocol and shared machinery for the run store.

A *store backend* persists completed shards keyed by the content hash
of their sweep spec.  Two implementations ship: the append-only JSONL
directory (:mod:`repro.runtime.store.jsonl`, the historical format) and
an indexed SQLite warehouse (:mod:`repro.runtime.store.sqlite`).  Both
answer the same five questions -- where does a spec live (``path_for``),
what shards are done (``load``), record one more (``append``), what
sweeps exist (``iter_runs``), and fold accumulated damage
(``compact``) -- so every layer above (the executor, campaigns, the
cluster coordinator, the CLI) stays backend-agnostic.

The invariant the backends must uphold is the repo's crown jewel: a
run resumed from either backend produces a canonical report that is
byte-identical to a cold run, for every engine and worker count.  The
backends may differ in layout, ordering and durability strategy, but
never in the reports they replay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.report import ShardReport
from repro.runtime.spec import JobSpec

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped to 2 when shard records gained the optional ``timing`` section
#: (readers tolerate its absence, but the filename isolation keeps record
#: formats from mixing within one file).
_FORMAT_VERSION = 2


def _library_version() -> str:
    # Imported lazily: repro/__init__ imports this package.
    from repro import __version__

    return __version__


@dataclass(frozen=True)
class StoredRun:
    """One stored sweep: its identity, spec, and completed shards.

    Yielded by :meth:`StoreBackend.iter_runs`; the query layer merges
    ``shards`` into a canonical report without re-executing anything.
    """

    sweep_key: str
    library: str
    format: int
    spec: dict[str, Any]
    shards: dict[tuple[int, int], ShardReport] = field(default_factory=dict)

    @property
    def algorithm(self) -> str:
        return self.spec["algorithm"]["name"]

    @property
    def graph_family(self) -> str:
        return self.spec["graph"]["family"]

    @property
    def engine(self) -> str:
        return self.spec.get("engine", "reactive")

    @property
    def label_space(self) -> int:
        return self.spec["algorithm"]["label_space"]


@dataclass
class CompactionStats:
    """What :meth:`StoreBackend.compact` scanned and repaired."""

    files: int = 0
    rewritten: int = 0
    torn_lines: int = 0
    duplicate_headers: int = 0
    duplicate_shards: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "files": self.files,
            "rewritten": self.rewritten,
            "torn_lines": self.torn_lines,
            "duplicate_headers": self.duplicate_headers,
            "duplicate_shards": self.duplicate_shards,
        }


class StoreBackend:
    """Base class every run-store backend extends.

    Subclasses set :attr:`kind` (the name ``resolve_backend`` and the
    CLI's ``--cache-backend`` flag use) and implement ``path_for`` /
    ``load`` / ``append`` / ``iter_runs`` / ``compact``.  ``clear`` is
    shared: eviction removes *every* backend's files under ``runs/`` so
    switching backends never strands the other format's data, and the
    per-backend counts are reported instead of a bare total.
    """

    #: Backend name, e.g. ``"jsonl"`` or ``"sqlite"``.
    kind: str = ""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    # ------------------------------------------------------------------

    def path_for(self, spec: JobSpec) -> Path:
        """The on-disk file holding the given spec's sweep."""
        raise NotImplementedError

    def load(
        self, spec: JobSpec, telemetry: Telemetry = NULL_TELEMETRY
    ) -> dict[tuple[int, int], ShardReport]:
        """All completed shards of the spec's sweep, keyed by bounds."""
        raise NotImplementedError

    def append(self, spec: JobSpec, report: ShardReport) -> None:
        """Persist one completed shard (recording the spec on first use)."""
        raise NotImplementedError

    def iter_runs(
        self,
        *,
        algorithm: str | None = None,
        graph_family: str | None = None,
        engine: str | None = None,
    ) -> Iterator[StoredRun]:
        """Every stored sweep matching the filters, in a stable order."""
        raise NotImplementedError

    def compact(self) -> CompactionStats:
        """Fold accumulated damage (torn lines, duplicate records)."""
        raise NotImplementedError

    # ------------------------------------------------------------------

    def clear(self) -> dict[str, int]:
        """Delete every stored run; returns removal counts per backend.

        Removes both formats regardless of which backend ``self`` is:
        ``runs/*.jsonl`` (the JSONL backend's sweep files) and
        ``runs/*.sqlite*`` (the warehouse database plus any WAL/journal
        siblings), so ``clear()`` after a backend switch cannot silently
        leave the other format's bytes serving stale results.
        """
        runs = self.root / "runs"
        counts = {"jsonl": 0, "sqlite": 0}
        if not runs.exists():
            return counts
        for path in sorted(runs.glob("*.jsonl")):
            path.unlink()
            counts["jsonl"] += 1
        for path in sorted(runs.glob("*.sqlite*")):
            path.unlink()
            counts["sqlite"] += 1
        return counts

    def __repr__(self) -> str:
        return f"{type(self).__name__}(root={str(self.root)!r})"
