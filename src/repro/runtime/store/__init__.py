"""Content-addressed on-disk store of completed shards, in two formats.

The store persists every completed shard keyed by the content hash of
its sweep spec, so interrupted or repeated runs resume instead of
recomputing.  Two interchangeable backends implement the
:class:`StoreBackend` interface:

``jsonl`` (:class:`JsonlBackend`, the default; :class:`RunStore` is its
    historical name)
    One append-only JSONL file per sweep under ``runs/``, written with
    single ``O_APPEND`` syscalls.  Byte-compatible with every cache
    directory written since the format-2 records.

``sqlite`` (:class:`SqliteBackend`)
    One indexed SQLite database (``runs/warehouse.sqlite``) holding
    every sweep, keyed by (spec hash, library version, record format)
    with the query dimensions -- algorithm, graph family, engine --
    denormalized into indexed columns.

Both backends replay byte-identical reports (the crown-jewel invariant
extends across backends, engines, and worker counts), both enumerate
their contents via ``iter_runs`` for the query layer in
:mod:`repro.runtime.store.query`, and both repair accumulated damage
via ``compact``.  Pick one by name with :func:`resolve_backend`, by
CLI flag (``--cache-backend``), or by ``cache="sqlite:<path>"`` in
:func:`repro.api.resolve_store`.
"""

from __future__ import annotations

import os

from repro.runtime.store.base import (
    _FORMAT_VERSION,
    DEFAULT_CACHE_DIR,
    CompactionStats,
    StoreBackend,
    StoredRun,
    _library_version,
)
from repro.runtime.store.jsonl import JsonlBackend, RunStore
from repro.runtime.store.query import (
    query_json,
    query_payload,
    query_runs,
    render_query_lines,
)
from repro.runtime.store.sqlite import SqliteBackend

#: Backend name -> class, the registry ``resolve_backend`` serves.
BACKENDS: dict[str, type[StoreBackend]] = {
    "jsonl": RunStore,
    "sqlite": SqliteBackend,
}


def resolve_backend(
    backend: str | None, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR
) -> StoreBackend:
    """Construct the named backend (``None`` means the JSONL default)."""
    name = backend if backend is not None else "jsonl"
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown store backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls(root)


__all__ = [
    "BACKENDS",
    "CompactionStats",
    "DEFAULT_CACHE_DIR",
    "JsonlBackend",
    "RunStore",
    "SqliteBackend",
    "StoreBackend",
    "StoredRun",
    "query_json",
    "query_payload",
    "query_runs",
    "render_query_lines",
    "resolve_backend",
    "_FORMAT_VERSION",
    "_library_version",
]
