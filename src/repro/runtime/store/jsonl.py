"""The append-only JSONL backend (the store's historical on-disk format).

Layout (under ``.repro_cache/`` by default)::

    .repro_cache/
      runs/
        <sweep_key>-v<library>-f<format>.jsonl   one file per sweep

Each file starts with a ``job`` header line carrying the full spec (for
humans and forensics -- the filename alone already identifies the sweep)
followed by one ``shard`` line per completed shard.  Records are written
with a single ``O_APPEND`` syscall each, so concurrent sweeps of the same
spec interleave at record granularity rather than tearing each other's
lines, and a process killed mid-write leaves at most one truncated
trailing line.  :meth:`JsonlBackend.load` skips undecodable lines
(re-running at most the affected shards) instead of failing.  A spec hash
names an immutable computation *within one library version* -- the
library and record-format versions are part of the filename, so results
computed by different code never serve (or evict) each other -- and the
store never invalidates in-place: :meth:`StoreBackend.clear` (or
deleting the directory) is the only eviction.  :meth:`compact` is the
one sanctioned rewrite: it folds torn lines and duplicate records out
of damaged files without touching healthy bytes.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from pathlib import Path
from typing import Any, Iterator

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.report import ShardReport
from repro.runtime.spec import JobSpec
from repro.runtime.store.base import (
    _FORMAT_VERSION,
    CompactionStats,
    StoreBackend,
    StoredRun,
    _library_version,
)

#: ``<sweep_key>-v<library>-f<format>`` -- the stem of every sweep file.
_STEM = re.compile(r"^(?P<key>[0-9a-f]{64})-v(?P<library>.+)-f(?P<format>\d+)$")


class JsonlBackend(StoreBackend):
    """A directory of append-only JSONL shard records, keyed by spec hash."""

    kind = "jsonl"

    # ------------------------------------------------------------------

    def path_for(self, spec: JobSpec) -> Path:
        """The JSONL file holding the given spec's sweep.

        The library version and record-format version are part of the
        filename: a spec hash cannot see code edits, so results computed
        by different versions must not share a file.  Filename isolation
        keeps concurrent checkouts of different versions from evicting
        each other's caches (an in-file version check would make each
        delete the other's work on every read) and from appending
        mixed-format records to one file.
        """
        return (
            self.root
            / "runs"
            / f"{spec.sweep_key()}-v{_library_version()}-f{_FORMAT_VERSION}.jsonl"
        )

    def load(
        self, spec: JobSpec, telemetry: Telemetry = NULL_TELEMETRY
    ) -> dict[tuple[int, int], ShardReport]:
        """All completed shards of the spec's sweep, keyed by shard bounds.

        Undecodable lines -- a truncated trailing line after an
        interruption, or (pathologically) a torn line from a concurrent
        writer on a filesystem without atomic appends -- are skipped, not
        fatal: the affected shards simply re-execute.  They are counted,
        though: each torn line costs a shard of recomputation, so a
        ``warnings.warn`` (and a telemetry warning event plus the
        ``store.torn_lines`` counter) names the cache file instead of
        letting resumed runs quietly redo work.
        """
        path = self.path_for(spec)
        if not path.exists():
            return {}
        shards: dict[tuple[int, int], ShardReport] = {}
        torn = 0
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload: dict[str, Any] = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue
                if payload.get("kind") != "shard":
                    # Headers (and unknown record kinds) are informational;
                    # version skew never reaches here because both the
                    # library and record-format versions are part of the
                    # filename.
                    continue
                report = ShardReport.from_dict(payload["report"])
                shards[report.shard] = report
        if torn:
            message = (
                f"run store {path} contains {torn} undecodable line(s) "
                "(interrupted write or corruption); the affected shards "
                "will re-execute"
            )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            telemetry.warn(message, file=str(path), lines=torn)
            telemetry.count("store.torn_lines", torn)
        return shards

    def append(self, spec: JobSpec, report: ShardReport) -> None:
        """Persist one completed shard (writing the header on first use).

        Each record goes out as one ``O_APPEND`` write, which POSIX makes
        atomic with respect to other appenders, so two sweeps of the same
        spec running at once cannot tear each other's lines.  The header
        is claimed with ``O_EXCL``: exactly one appender creates the file
        and that one writes the ``job`` header, so concurrent first
        appends cannot duplicate it (a ``path.exists()`` check would let
        both racers see "no file yet" and both write headers).
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(
                    path, os.O_WRONLY | os.O_APPEND | os.O_CREAT | os.O_EXCL, 0o644
                )
                created = True
                break
            except FileExistsError:
                try:
                    fd = os.open(path, os.O_WRONLY | os.O_APPEND)
                    created = False
                    break
                except FileNotFoundError:
                    # The file vanished between the two opens (a racing
                    # clear()); take another lap and claim the header.
                    continue
        lines = []
        if created:
            lines.append(
                {
                    "kind": "job",
                    "version": _FORMAT_VERSION,
                    "library": _library_version(),
                    "spec": spec.sweep_spec().to_dict(),
                }
            )
        lines.append({"kind": "shard", "report": report.to_dict()})
        payload = "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)

    # ------------------------------------------------------------------

    def iter_runs(
        self,
        *,
        algorithm: str | None = None,
        graph_family: str | None = None,
        engine: str | None = None,
    ) -> Iterator[StoredRun]:
        """Every stored sweep matching the filters, sorted by filename.

        Files without a parseable ``job`` header are skipped: the spec
        (and hence the filter fields) cannot be recovered from shard
        records alone.  ``compact`` never produces such a file, so in
        practice this only drops a sweep whose very first append was
        interrupted before the header line landed.
        """
        runs = self.root / "runs"
        if not runs.exists():
            return
        for path in sorted(runs.glob("*.jsonl")):
            match = _STEM.match(path.stem)
            if match is None:
                continue
            spec: dict[str, Any] | None = None
            shards: dict[tuple[int, int], ShardReport] = {}
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload: dict[str, Any] = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    kind = payload.get("kind")
                    if kind == "job" and spec is None:
                        spec = payload["spec"]
                    elif kind == "shard":
                        report = ShardReport.from_dict(payload["report"])
                        shards[report.shard] = report
            if spec is None:
                continue
            run = StoredRun(
                sweep_key=match["key"],
                library=match["library"],
                format=int(match["format"]),
                spec=spec,
                shards=shards,
            )
            if algorithm is not None and run.algorithm != algorithm:
                continue
            if graph_family is not None and run.graph_family != graph_family:
                continue
            if engine is not None and run.engine != engine:
                continue
            yield run

    def compact(self) -> CompactionStats:
        """Fold torn lines and duplicate records out of damaged files.

        Each sweep file is rewritten -- atomically, via a temp file and
        ``os.replace`` -- only when damage is found: the first ``job``
        header survives, later headers are dropped, the first record for
        each shard bounds survives, later duplicates are dropped, and
        undecodable lines disappear.  Kept lines are carried over
        byte-for-byte (never re-serialized), so compaction of a healthy
        file is a no-op and a compacted file loads to exactly the shards
        it loaded before.
        """
        stats = CompactionStats()
        runs = self.root / "runs"
        if not runs.exists():
            return stats
        for path in sorted(runs.glob("*.jsonl")):
            stats.files += 1
            kept: list[str] = []
            damaged = False
            header_seen = False
            bounds_seen: set[tuple[int, int]] = set()
            with path.open("r", encoding="utf-8") as handle:
                for raw in handle:
                    line = raw.strip()
                    if not line:
                        damaged = True
                        continue
                    try:
                        payload: dict[str, Any] = json.loads(line)
                    except json.JSONDecodeError:
                        stats.torn_lines += 1
                        damaged = True
                        continue
                    if payload.get("kind") == "job":
                        if header_seen:
                            stats.duplicate_headers += 1
                            damaged = True
                            continue
                        header_seen = True
                    elif payload.get("kind") == "shard":
                        report = ShardReport.from_dict(payload["report"])
                        if report.shard in bounds_seen:
                            stats.duplicate_shards += 1
                            damaged = True
                            continue
                        bounds_seen.add(report.shard)
                    if not raw.endswith("\n"):
                        # A final line missing its newline decodes fine but
                        # would tear the next appended record; restore it.
                        raw = raw + "\n"
                        damaged = True
                    kept.append(raw)
            if not damaged:
                continue
            stats.rewritten += 1
            tmp = path.with_name(path.name + ".compact")
            with tmp.open("w", encoding="utf-8") as handle:
                handle.writelines(kept)
            os.replace(tmp, path)
        return stats


class RunStore(JsonlBackend):
    """Backwards-compatible name for the JSONL backend.

    ``RunStore`` predates the backend split; every public surface that
    accepted one (``cache=RunStore(...)``, ``store=``) still does, and
    constructing one is exactly constructing a :class:`JsonlBackend`.
    """
