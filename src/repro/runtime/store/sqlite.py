"""The SQLite warehouse backend: one indexed database for every sweep.

Layout (under ``.repro_cache/`` by default)::

    .repro_cache/
      runs/
        warehouse.sqlite      every sweep, in two tables

The ``runs`` table holds one row per sweep -- keyed by (spec hash,
library version, record-format version), exactly the triple the JSONL
backend spells in a filename -- with the dimensions queries filter on
(algorithm, graph family, graph label, engine, label space) denormalized
into indexed columns.  The ``shards`` table holds one row per completed
shard.  Both writes go through ``INSERT OR IGNORE`` under the primary
key, so the first-append race the JSONL backend solves with ``O_EXCL``
does not exist here: two concurrent first appenders insert the same
``runs`` row and the second insert is a no-op.

Durability is SQLite's, not ``O_APPEND``'s: a process killed mid-append
rolls back to the last committed shard, so there are no torn lines to
skip and :meth:`SqliteBackend.compact` has almost nothing to fold.
Connections are opened per operation (with a generous busy timeout), so
a backend instance can cross ``fork()`` into worker processes safely.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Iterator

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.report import ShardReport
from repro.runtime.spec import GraphSpec, JobSpec, canonical_json
from repro.runtime.store.base import (
    _FORMAT_VERSION,
    CompactionStats,
    StoreBackend,
    StoredRun,
    _library_version,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    sweep_key    TEXT    NOT NULL,
    library      TEXT    NOT NULL,
    format       INTEGER NOT NULL,
    algorithm    TEXT    NOT NULL,
    graph_family TEXT    NOT NULL,
    graph_label  TEXT    NOT NULL,
    engine       TEXT    NOT NULL,
    label_space  INTEGER,
    spec         TEXT    NOT NULL,
    PRIMARY KEY (sweep_key, library, format)
);
CREATE INDEX IF NOT EXISTS runs_by_dimension
    ON runs (algorithm, graph_family, engine, library);
CREATE TABLE IF NOT EXISTS shards (
    sweep_key TEXT    NOT NULL,
    library   TEXT    NOT NULL,
    format    INTEGER NOT NULL,
    lo        INTEGER NOT NULL,
    hi        INTEGER NOT NULL,
    report    TEXT    NOT NULL,
    PRIMARY KEY (sweep_key, library, format, lo, hi)
);
"""


class SqliteBackend(StoreBackend):
    """An indexed warehouse of completed shards in a single database."""

    kind = "sqlite"

    # ------------------------------------------------------------------

    def path_for(self, spec: JobSpec) -> Path:
        """The warehouse database (shared by every sweep).

        Unlike the JSONL backend there is no per-sweep file: the (spec
        hash, library, format) triple that names a JSONL file is the
        ``runs`` primary key instead, preserving the same isolation --
        results computed by different code never serve each other.
        """
        return self._db_path()

    def _connect(self) -> sqlite3.Connection:
        db = self._db_path()
        db.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(db), timeout=10.0)
        connection.execute("PRAGMA busy_timeout = 10000")
        connection.executescript(_SCHEMA)
        return connection

    def _db_path(self) -> Path:
        return self.root / "runs" / "warehouse.sqlite"

    @staticmethod
    def _key(spec: JobSpec) -> tuple[str, str, int]:
        return (spec.sweep_key(), _library_version(), _FORMAT_VERSION)

    def load(
        self, spec: JobSpec, telemetry: Telemetry = NULL_TELEMETRY
    ) -> dict[tuple[int, int], ShardReport]:
        """All completed shards of the spec's sweep, keyed by shard bounds.

        SQLite's transactional writes mean there is no torn-line path
        here: an interrupted append rolls back whole, so (unlike the
        JSONL backend) ``load`` never warns and never re-executes shards
        it once stored.  The ``telemetry`` parameter is accepted for
        interface parity.
        """
        if not self._db_path().exists():
            return {}
        shards: dict[tuple[int, int], ShardReport] = {}
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT report FROM shards"
                " WHERE sweep_key = ? AND library = ? AND format = ?"
                " ORDER BY lo, hi",
                self._key(spec),
            ).fetchall()
        finally:
            connection.close()
        for (payload,) in rows:
            report = ShardReport.from_dict(json.loads(payload))
            shards[report.shard] = report
        return shards

    def append(self, spec: JobSpec, report: ShardReport) -> None:
        """Persist one completed shard (registering the sweep on first use).

        Both inserts are ``INSERT OR IGNORE`` under the primary key and
        share one transaction: concurrent first appenders race benignly
        (one row wins, the rest are no-ops) and a crash between the two
        inserts rolls both back.
        """
        sweep = spec.sweep_spec().to_dict()
        graph = GraphSpec.from_dict(sweep["graph"])
        key = self._key(spec)
        connection = self._connect()
        try:
            with connection:
                connection.execute(
                    "INSERT OR IGNORE INTO runs"
                    " (sweep_key, library, format, algorithm, graph_family,"
                    "  graph_label, engine, label_space, spec)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    key
                    + (
                        sweep["algorithm"]["name"],
                        graph.family,
                        graph.label,
                        sweep.get("engine", "reactive"),
                        sweep["algorithm"]["label_space"],
                        canonical_json(sweep),
                    ),
                )
                lo, hi = report.shard
                connection.execute(
                    "INSERT OR IGNORE INTO shards"
                    " (sweep_key, library, format, lo, hi, report)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    key + (lo, hi, canonical_json(report.to_dict())),
                )
        finally:
            connection.close()

    # ------------------------------------------------------------------

    def iter_runs(
        self,
        *,
        algorithm: str | None = None,
        graph_family: str | None = None,
        engine: str | None = None,
    ) -> Iterator[StoredRun]:
        """Every stored sweep matching the filters, sorted by key.

        The filters push down to SQL (served by the dimension index);
        ordering is by the (sweep_key, library, format) primary key,
        which matches the JSONL backend's filename sort, so the two
        backends enumerate identical warehouses identically.
        """
        if not self._db_path().exists():
            return
        conditions = ["1 = 1"]
        parameters: list[Any] = []
        for column, value in (
            ("algorithm", algorithm),
            ("graph_family", graph_family),
            ("engine", engine),
        ):
            if value is not None:
                conditions.append(f"{column} = ?")
                parameters.append(value)
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT sweep_key, library, format, spec FROM runs"
                f" WHERE {' AND '.join(conditions)}"
                " ORDER BY sweep_key, library, format",
                parameters,
            ).fetchall()
            for sweep_key, library, fmt, spec_text in rows:
                shard_rows = connection.execute(
                    "SELECT report FROM shards"
                    " WHERE sweep_key = ? AND library = ? AND format = ?"
                    " ORDER BY lo, hi",
                    (sweep_key, library, fmt),
                ).fetchall()
                shards: dict[tuple[int, int], ShardReport] = {}
                for (payload,) in shard_rows:
                    report = ShardReport.from_dict(json.loads(payload))
                    shards[report.shard] = report
                yield StoredRun(
                    sweep_key=sweep_key,
                    library=library,
                    format=fmt,
                    spec=json.loads(spec_text),
                    shards=shards,
                )
        finally:
            connection.close()

    def compact(self) -> CompactionStats:
        """Drop orphaned shard rows and reclaim free pages.

        Transactions make the JSONL failure modes (torn lines, duplicate
        headers, duplicate shards) unrepresentable here, so compaction
        only removes ``shards`` rows whose ``runs`` row is gone -- a
        state no shipped writer produces, covered for forensic edits --
        and ``VACUUM``\\ s when it changed anything.
        """
        stats = CompactionStats()
        if not self._db_path().exists():
            return stats
        stats.files = 1
        connection = self._connect()
        try:
            with connection:
                cursor = connection.execute(
                    "DELETE FROM shards WHERE NOT EXISTS ("
                    " SELECT 1 FROM runs"
                    " WHERE runs.sweep_key = shards.sweep_key"
                    " AND runs.library = shards.library"
                    " AND runs.format = shards.format)"
                )
                orphans = cursor.rowcount
            if orphans:
                stats.rewritten = 1
                stats.duplicate_shards = orphans
                connection.execute("VACUUM")
        finally:
            connection.close()
        return stats
