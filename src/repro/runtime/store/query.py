"""Answer worst-case and tradeoff questions from stored runs.

The store already holds every completed shard of every sweep; this
module turns that warehouse into answers without re-executing anything:
filter the stored sweeps (:func:`query_runs`), merge each one's shards
with the same :func:`repro.runtime.report.merge_reports` a live run
uses, and report the merged extremes.  Because the merge discards the
non-canonical ``timing`` section and the entries are sorted by content
key, the same warehouse contents produce byte-identical query payloads
whichever backend stored them -- the crown-jewel invariant, extended to
queries.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.report import merge_reports
from repro.runtime.spec import canonical_json
from repro.runtime.store.base import StoreBackend


def query_runs(
    store: StoreBackend,
    *,
    algorithm: str | None = None,
    graph: str | None = None,
    engine: str | None = None,
    label_space: int | None = None,
) -> list[dict[str, Any]]:
    """Stored sweeps matching the filters, each merged to its extremes.

    ``graph`` filters on the graph family (``ring``, ``path``, ...);
    ``label_space`` on the algorithm's label-space size.  Sweeps with no
    completed shards yet (a header and nothing else) are skipped: they
    have no extremes to report.  Entries come back sorted by
    (sweep_key, library, format), so the listing is stable across
    backends and insertion orders.
    """
    entries: list[dict[str, Any]] = []
    for run in store.iter_runs(
        algorithm=algorithm, graph_family=graph, engine=engine
    ):
        if label_space is not None and run.label_space != label_space:
            continue
        if not run.shards:
            continue
        merged = merge_reports(run.shards.values())
        entries.append(
            {
                "sweep_key": run.sweep_key,
                "library": run.library,
                "format": run.format,
                "algorithm": run.algorithm,
                "graph": run.spec["graph"],
                "engine": run.engine,
                "label_space": run.label_space,
                "spec": run.spec,
                "result": merged.to_dict(),
            }
        )
    entries.sort(key=lambda e: (e["sweep_key"], e["library"], e["format"]))
    return entries


def query_payload(
    store: StoreBackend,
    *,
    algorithm: str | None = None,
    graph: str | None = None,
    engine: str | None = None,
    label_space: int | None = None,
) -> dict[str, Any]:
    """The canonical query answer: the filters asked, the runs found.

    Deliberately omits the backend kind and store root: the payload
    describes the stored computations, not the bytes holding them, so
    two backends warehousing the same sweeps answer identically.
    """
    runs = query_runs(
        store,
        algorithm=algorithm,
        graph=graph,
        engine=engine,
        label_space=label_space,
    )
    return {
        "query": {
            "algorithm": algorithm,
            "graph": graph,
            "engine": engine,
            "label_space": label_space,
        },
        "result": {"count": len(runs), "runs": runs},
    }


def render_query_lines(payload: dict[str, Any]) -> list[str]:
    """Human-readable lines for a :func:`query_payload` answer."""
    runs = payload["result"]["runs"]
    lines = [f"{len(runs)} stored run(s) match"]
    for entry in runs:
        graph = entry["graph"]
        params = ",".join(f"{k}={v}" for k, v in sorted(graph["params"].items()))
        result = entry["result"]
        worst_time = result["worst_time"]
        worst_cost = result["worst_cost"]
        extremes = (
            "no successful execution"
            if worst_time is None
            else (
                f"worst time {worst_time['time']}"
                f" worst cost {worst_cost['cost']}"
            )
        )
        lines.append(
            f"  {entry['algorithm']} on {graph['family']}({params})"
            f" L={entry['label_space']} engine={entry['engine']}:"
            f" {result['executions']} executions over"
            f" {result['shards']} shard(s); {extremes}"
            f" [{entry['sweep_key'][:12]}]"
        )
    return lines


def query_json(payload: dict[str, Any]) -> str:
    """The payload as canonical JSON (sorted keys, no whitespace)."""
    return canonical_json(payload)
