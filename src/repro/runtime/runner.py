"""The high-level entry point: plan, consult the store, execute, merge.

:func:`execute_job` is what the analysis layer and the CLI call.  It
plans shard bounds from the configuration-space size, looks completed
shards up in the run store (if one is given), hands only the missing
shards to the executor, persists each fresh report as it arrives, and
merges everything into one deterministic report with cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.runtime.executor import Executor, SerialExecutor, plan_shards
from repro.runtime.report import MergedReport, merge_reports
from repro.runtime.spec import JobSpec
from repro.runtime.store import RunStore


@dataclass(frozen=True)
class RunStats:
    """How a run's shards were obtained."""

    sweep_key: str
    shards_total: int
    shards_cached: int
    shards_executed: int
    executions: int

    @property
    def fully_cached(self) -> bool:
        return self.shards_total > 0 and self.shards_cached == self.shards_total

    def summary(self) -> str:
        return (
            f"{self.shards_total} shards: {self.shards_cached} cached, "
            f"{self.shards_executed} executed "
            f"({self.executions} simulations total; run {self.sweep_key[:12]})"
        )


@dataclass(frozen=True)
class RunOutcome:
    report: MergedReport
    stats: RunStats


def execute_job(
    spec: JobSpec,
    executor: Executor | None = None,
    store: RunStore | None = None,
    shard_count: int | None = None,
    shard_size: int | None = None,
    graph: PortLabeledGraph | None = None,
) -> RunOutcome:
    """Run a whole sweep, reusing any shards the store already holds.

    ``spec.shard`` is ignored (the runner owns sharding); pass the sweep
    spec.  Cached shards are reused only when their bounds match the
    current plan, so changing ``shard_count``/``shard_size`` safely
    re-executes rather than merging mismatched slices.  ``graph`` may be
    passed when the caller has already built ``spec.graph`` (it is only
    used to size the configuration space).
    """
    spec = spec.sweep_spec()
    executor = executor if executor is not None else SerialExecutor()
    graph = graph if graph is not None else spec.graph.build()
    total = spec.config_space_size(graph)
    bounds = plan_shards(total, shard_count=shard_count, shard_size=shard_size)

    known = store.load(spec) if store is not None else {}
    cached = [known[b] for b in bounds if b in known]
    missing = [spec.shard_spec(lo, hi) for (lo, hi) in bounds if (lo, hi) not in known]

    fresh = []
    for report in executor.map_shards(missing):
        if store is not None:
            store.append(spec, report)
        fresh.append(report)

    merged = merge_reports(cached + fresh)
    stats = RunStats(
        sweep_key=spec.key(),
        shards_total=len(bounds),
        shards_cached=len(cached),
        shards_executed=len(fresh),
        executions=merged.executions,
    )
    return RunOutcome(report=merged, stats=stats)
