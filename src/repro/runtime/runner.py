"""The high-level entry point: plan, consult the store, execute, merge.

:func:`execute_job` is what the analysis layer and the CLI call.  It
plans shard bounds from the configuration-space size, looks completed
shards up in the run store (if one is given), hands only the missing
shards to the executor, persists each fresh report as it arrives, and
merges everything into one deterministic report with cache statistics.
The store is any :class:`repro.runtime.store.StoreBackend` -- JSONL
files or the SQLite warehouse -- and the merged report is byte-identical
whichever backend (or none) served the cached shards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.port_graph import PortLabeledGraph
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.executor import Executor, SerialExecutor, plan_shards
from repro.runtime.report import MergedReport, ShardReport, merge_reports
from repro.runtime.spec import JobSpec
from repro.runtime.store import StoreBackend


@dataclass(frozen=True)
class RunStats:
    """How a run's shards were obtained."""

    sweep_key: str
    shards_total: int
    shards_cached: int
    shards_executed: int
    executions: int

    @property
    def fully_cached(self) -> bool:
        return self.shards_total > 0 and self.shards_cached == self.shards_total

    def summary(self) -> str:
        return (
            f"{self.shards_total} shards: {self.shards_cached} cached, "
            f"{self.shards_executed} executed "
            f"({self.executions} simulations total; run {self.sweep_key[:12]})"
        )


@dataclass(frozen=True)
class RunOutcome:
    report: MergedReport
    stats: RunStats


def _emit_shard(telemetry: Telemetry, report: ShardReport, cached: bool) -> None:
    """Re-emit one shard's outcome (and its marshalled worker timing)."""
    attrs: dict = {
        "lo": report.shard[0],
        "hi": report.shard[1],
        "executions": report.executions,
    }
    if report.timing is not None:
        attrs.update(
            seconds=report.timing.seconds,
            table_seconds=report.timing.table_seconds,
            engine=report.timing.engine,
            chunks=report.timing.chunks,
        )
    telemetry.event("shard.cached" if cached else "shard.complete", **attrs)


def execute_job(
    spec: JobSpec,
    executor: Executor | None = None,
    store: StoreBackend | None = None,
    shard_count: int | None = None,
    shard_size: int | None = None,
    graph: PortLabeledGraph | None = None,
    telemetry: Telemetry = NULL_TELEMETRY,
) -> RunOutcome:
    """Run a whole sweep, reusing any shards the store already holds.

    ``spec.shard`` is ignored (the runner owns sharding); pass the sweep
    spec.  Cached shards are reused only when their bounds match the
    current plan, so changing ``shard_count``/``shard_size`` safely
    re-executes rather than merging mismatched slices.  ``graph`` may be
    passed when the caller has already built ``spec.graph`` (it is only
    used to size the configuration space).

    Telemetry narrates the run -- shard plan gauges, store hit/miss
    counters, one event per shard (carrying the worker-measured timing
    back out of the :class:`ShardReport` channel), a ``shards`` progress
    stream and a ``merge`` span -- without ever influencing it: the
    merged report is byte-identical with telemetry on or off.
    """
    spec = spec.sweep_spec()
    executor = executor if executor is not None else SerialExecutor()
    graph = graph if graph is not None else spec.graph.build()
    total = spec.config_space_size(graph)
    bounds = plan_shards(total, shard_count=shard_count, shard_size=shard_size)
    telemetry.gauge("sweep.configurations", total)
    telemetry.gauge("sweep.shards", len(bounds))

    if store is not None:
        with telemetry.span("store.load"):
            known = store.load(spec, telemetry=telemetry)
    else:
        known = {}
    cached = [known[b] for b in bounds if b in known]
    missing = [spec.shard_spec(lo, hi) for (lo, hi) in bounds if (lo, hi) not in known]
    if telemetry.enabled and store is not None:
        telemetry.count("store.shards.hit", len(cached))
        telemetry.count("store.shards.missing", len(missing))

    done = 0
    if telemetry.enabled:
        for report in cached:
            _emit_shard(telemetry, report, cached=True)
            done += 1
            telemetry.progress("shards", done, len(bounds))

    fresh = []
    for report in executor.map_shards(missing):
        if store is not None:
            store.append(spec, report)
        fresh.append(report)
        if telemetry.enabled:
            _emit_shard(telemetry, report, cached=False)
            telemetry.count("shards.completed")
            telemetry.count("configs.evaluated", report.executions)
            done += 1
            telemetry.progress("shards", done, len(bounds))

    with telemetry.span("merge"):
        merged = merge_reports(cached + fresh)
    stats = RunStats(
        sweep_key=spec.key(),
        shards_total=len(bounds),
        shards_cached=len(cached),
        shards_executed=len(fresh),
        executions=merged.executions,
    )
    return RunOutcome(report=merged, stats=stats)
