"""Serializable job specifications for the parallel experiment runtime.

A worst-case sweep is described *by value*: the algorithm as a name plus
parameters, the graph as a family descriptor, and the adversarial grid as
delays / label pairs / start policy.  Worker processes rebuild the actual
objects from the description, so a :class:`JobSpec` can be pickled to a
pool, serialized to JSON for the run store, and hashed into a stable
content address.

The configuration space of a job is totally ordered (the enumeration order
of :func:`repro.sim.adversary.configurations`); a *shard* is a contiguous
slice ``[lo, hi)`` of that order.  Each configuration therefore has a
global index, which downstream merge logic uses for tie-breaking so that
sharded results are bit-identical to a serial enumeration.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping

from repro.core.base import RendezvousAlgorithm
from repro.core.cheap import Cheap, CheapSimultaneous
from repro.core.fast import Fast, FastSimultaneous
from repro.core.fast_relabel import FastWithRelabeling, FastWithRelabelingSimultaneous
from repro.exploration.registry import KnowledgeModel, best_exploration
from repro.graphs import families
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.adversary import Configuration, all_label_pairs, configurations

#: Graph families constructible from a flat parameter mapping.
GRAPH_BUILDERS = {
    "ring": families.oriented_ring,
    "path": families.path_graph,
    "star": families.star_graph,
    "complete": families.complete_graph,
    "tree": families.full_binary_tree,
    "hypercube": families.hypercube,
    "torus": families.torus_grid,
    "lollipop": families.lollipop,
    "circulant": families.circulant_graph,
    "complete-bipartite": families.complete_bipartite,
    "petersen": families.petersen_graph,
}

#: Algorithm constructors by CLI name; ``fwr`` variants also take a weight.
ALGORITHM_BUILDERS = {
    "cheap": Cheap,
    "cheap-sim": CheapSimultaneous,
    "fast": Fast,
    "fast-sim": FastSimultaneous,
    "fwr": FastWithRelabeling,
    "fwr-sim": FastWithRelabelingSimultaneous,
}

_WEIGHTED_ALGORITHMS = ("fwr", "fwr-sim")


def canonical_json(payload: Any) -> str:
    """The canonical JSON form used for hashing and byte-identity checks."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _content_key(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class GraphSpec:
    """A graph family name plus the keyword parameters to rebuild it.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so instances
    are hashable and have a unique canonical form.  Use :meth:`make` to
    construct one from keyword arguments.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, family: str, **params: Any) -> "GraphSpec":
        return cls(family, tuple(sorted((k, _freeze(v)) for k, v in params.items())))

    def build(self) -> PortLabeledGraph:
        if self.family not in GRAPH_BUILDERS:
            raise ValueError(
                f"unknown graph family {self.family!r}; "
                f"choose from {sorted(GRAPH_BUILDERS)}"
            )
        kwargs = {name: _thaw(value) for name, value in self.params}
        return GRAPH_BUILDERS[self.family](**kwargs)

    @property
    def label(self) -> str:
        """Short display name, e.g. ``ring(n=16)``."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})"

    def to_dict(self) -> dict[str, Any]:
        return {"family": self.family, "params": {k: _thaw(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GraphSpec":
        return cls.make(payload["family"], **payload.get("params", {}))


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm name plus the parameters to rebuild it on a graph.

    The exploration procedure is *derived* (via
    :func:`repro.exploration.registry.best_exploration` under
    ``knowledge``), not serialized: it is a deterministic function of the
    graph, and rebuilding it in the worker keeps the spec small.
    """

    name: str
    label_space: int
    weight: int = 2
    knowledge: str = KnowledgeModel.MAP_WITH_POSITION.value

    def __post_init__(self) -> None:
        # Only the fwr variants consume the weight; pin it to the default
        # elsewhere so e.g. Cheap(weight=3) and Cheap(weight=2) are equal,
        # hash alike, and share one run-store entry.
        if self.name not in _WEIGHTED_ALGORITHMS and self.weight != 2:
            object.__setattr__(self, "weight", 2)

    def build(self, graph: PortLabeledGraph) -> RendezvousAlgorithm:
        if self.name not in ALGORITHM_BUILDERS:
            raise ValueError(
                f"unknown algorithm {self.name!r}; "
                f"choose from {sorted(ALGORITHM_BUILDERS)}"
            )
        exploration = best_exploration(graph, KnowledgeModel(self.knowledge))
        builder = ALGORITHM_BUILDERS[self.name]
        if self.name in _WEIGHTED_ALGORITHMS:
            return builder(exploration, self.label_space, self.weight)
        return builder(exploration, self.label_space)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "label_space": self.label_space,
            "weight": self.weight,
            "knowledge": self.knowledge,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AlgorithmSpec":
        return cls(
            name=payload["name"],
            label_space=payload["label_space"],
            weight=payload.get("weight", 2),
            knowledge=payload.get("knowledge", KnowledgeModel.MAP_WITH_POSITION.value),
        )


@dataclass(frozen=True)
class JobSpec:
    """One unit of adversary-search work, serializable by value.

    ``shard=None`` describes the whole sweep; ``shard=(lo, hi)`` restricts
    it to the configurations with global indices in ``[lo, hi)``.
    ``horizon=None`` means each execution's round budget is derived from
    the algorithm's own schedule (``delay + max schedule length``), which
    is how :func:`repro.analysis.sweep.worst_case_sweep` runs.
    """

    algorithm: AlgorithmSpec
    graph: GraphSpec
    delays: tuple[int, ...] = (0,)
    label_pairs: tuple[tuple[int, int], ...] | None = None
    fix_first_start: bool = False
    presence: str = "from-start"
    horizon: int | None = None
    shard: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Shard algebra
    # ------------------------------------------------------------------

    def sweep_spec(self) -> "JobSpec":
        """The whole-sweep spec this shard belongs to."""
        return replace(self, shard=None) if self.shard is not None else self

    def shard_spec(self, lo: int, hi: int) -> "JobSpec":
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid shard bounds [{lo}, {hi})")
        return replace(self, shard=(lo, hi))

    # ------------------------------------------------------------------
    # Configuration space
    # ------------------------------------------------------------------

    def resolved_label_pairs(self) -> tuple[tuple[int, int], ...]:
        if self.label_pairs is not None:
            return self.label_pairs
        return tuple(all_label_pairs(self.algorithm.label_space))

    def config_space_size(self, graph: PortLabeledGraph | None = None) -> int:
        """Total number of configurations, without enumerating them."""
        graph = graph if graph is not None else self.graph.build()
        n = graph.num_nodes
        start_pairs = (n - 1) if self.fix_first_start else n * (n - 1)
        return len(self.resolved_label_pairs()) * start_pairs * len(self.delays)

    def iter_configs(self, graph: PortLabeledGraph) -> Iterator[Configuration]:
        """All configurations in the global (shard-index) order."""
        return configurations(
            graph,
            self.resolved_label_pairs(),
            delays=self.delays,
            fix_first_start=self.fix_first_start,
        )

    def iter_shard(
        self, graph: PortLabeledGraph
    ) -> Iterator[tuple[int, Configuration]]:
        """The shard's ``(global_index, configuration)`` pairs."""
        lo, hi = self.shard if self.shard is not None else (0, None)
        sliced = itertools.islice(self.iter_configs(graph), lo, hi)
        return ((lo + offset, config) for offset, config in enumerate(sliced))

    # ------------------------------------------------------------------
    # Serialization and content addressing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm.to_dict(),
            "graph": self.graph.to_dict(),
            "delays": list(self.delays),
            "label_pairs": (
                None
                if self.label_pairs is None
                else [list(pair) for pair in self.label_pairs]
            ),
            "fix_first_start": self.fix_first_start,
            "presence": self.presence,
            "horizon": self.horizon,
            "shard": None if self.shard is None else list(self.shard),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        label_pairs = payload.get("label_pairs")
        shard = payload.get("shard")
        return cls(
            algorithm=AlgorithmSpec.from_dict(payload["algorithm"]),
            graph=GraphSpec.from_dict(payload["graph"]),
            delays=tuple(payload["delays"]),
            label_pairs=(
                None
                if label_pairs is None
                else tuple((a, b) for a, b in label_pairs)
            ),
            fix_first_start=payload["fix_first_start"],
            presence=payload.get("presence", "from-start"),
            horizon=payload.get("horizon"),
            shard=None if shard is None else (shard[0], shard[1]),
        )

    def key(self) -> str:
        """Content hash of this spec (including the shard slice, if any)."""
        return _content_key(self.to_dict())

    def sweep_key(self) -> str:
        """Content hash of the whole sweep this spec belongs to."""
        return self.sweep_spec().key()
