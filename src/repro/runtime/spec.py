"""Serializable job specifications for the parallel experiment runtime.

A worst-case sweep is described *by value*: the algorithm as a name plus
parameters, the graph as a family descriptor, and the adversarial grid as
delays / label pairs / start policy.  Worker processes rebuild the actual
objects from the description, so a :class:`JobSpec` can be pickled to a
pool, serialized to JSON for the run store, and hashed into a stable
content address.

The configuration space of a job is totally ordered (the enumeration order
of :func:`repro.sim.adversary.configurations`); a *shard* is a contiguous
slice ``[lo, hi)`` of that order.  Each configuration therefore has a
global index, which downstream merge logic uses for tie-breaking so that
sharded results are bit-identical to a serial enumeration.

Every name in a spec (graph family, algorithm, knowledge model, presence
model) resolves through the named registries in :mod:`repro.registry`;
unknown names raise :class:`repro.registry.SpecError` listing the valid
choices.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Iterator, Mapping

from repro.core.base import RendezvousAlgorithm
from repro.exploration.registry import KnowledgeModel, best_exploration
from repro.graphs.port_graph import PortLabeledGraph
from repro.registry import (
    ALGORITHMS,
    EXPLORATIONS,
    GRAPH_FAMILIES,
    KNOWLEDGE_MODELS,
)
from repro.sim.adversary import (
    Configuration,
    all_label_pairs,
    configurations,
    default_start_pairs,
)


def canonical_json(payload: Any) -> str:
    """The canonical JSON form used for hashing and byte-identity checks."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _content_key(payload: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def resolve_exploration(name: str, knowledge: str):
    """The EXPLORATIONS entry for ``name``, checked against ``knowledge``.

    The single source of truth for exploration/knowledge compatibility:
    a procedure's ``knowledge`` metadata lists the models it serves, and
    naming it under any other model is a contradiction (e.g. a known-map
    DFS cannot run with only a size bound).
    """
    procedure = EXPLORATIONS.entry(name)  # SpecError if unknown
    served = procedure.metadata.get("knowledge", ())
    if served and knowledge not in served:
        raise ValueError(
            f"exploration {name!r} serves knowledge models "
            f"{list(served)}, not {knowledge!r}"
        )
    return procedure


def freeze_value(value: Any) -> Any:
    """Lists/tuples -> nested tuples, so parameter values compare and
    hash canonically; mappings keep their shape with frozen values."""
    if isinstance(value, Mapping):
        return {key: freeze_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(item) for item in value)
    return value


def thaw_value(value: Any) -> Any:
    """The inverse of :func:`freeze_value`: back to JSON-ready built-ins
    (nested tuples -> lists, mappings recursed)."""
    if isinstance(value, Mapping):
        return {key: thaw_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [thaw_value(item) for item in value]
    return value


def ensure_hashable_param(key: str, value: Any) -> None:
    """Reject mapping values anywhere inside a graph parameter.

    A mapping would survive :func:`freeze_value` as a dict (even nested
    inside a sequence) and break the spec hashability worker processes
    memoise on -- fail at the construction site instead of deep inside a
    pool worker's ``lru_cache``.
    """
    if isinstance(value, Mapping):
        raise ValueError(
            f"graph parameter {key!r} must be a scalar or (nested) sequence, "
            "not a mapping"
        )
    if isinstance(value, (list, tuple)):
        for item in value:
            ensure_hashable_param(key, item)


@dataclass(frozen=True)
class GraphSpec:
    """A graph family name plus the keyword parameters to rebuild it.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so instances
    are hashable and have a unique canonical form.  Use :meth:`make` to
    construct one from keyword arguments.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, family: str, **params: Any) -> "GraphSpec":
        for key, value in params.items():
            ensure_hashable_param(key, value)
        return cls(
            family, tuple(sorted((k, freeze_value(v)) for k, v in params.items()))
        )

    def build(self) -> PortLabeledGraph:
        entry = GRAPH_FAMILIES.entry(self.family)  # SpecError if unknown
        kwargs = {name: thaw_value(value) for name, value in self.params}
        return entry.build(**kwargs)

    @property
    def label(self) -> str:
        """Short display name, e.g. ``ring(n=16)``."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inner})"

    def to_dict(self) -> dict[str, Any]:
        return {"family": self.family, "params": {k: thaw_value(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GraphSpec":
        return cls.make(payload["family"], **payload.get("params", {}))


@dataclass(frozen=True)
class AlgorithmSpec:
    """An algorithm name plus the parameters to rebuild it on a graph.

    By default the exploration procedure is *derived* (via
    :func:`repro.exploration.registry.best_exploration` under
    ``knowledge``), not serialized: it is a deterministic function of the
    graph, and rebuilding it in the worker keeps the spec small.  An
    explicit ``exploration`` names a registered procedure instead,
    overriding the knowledge-model hierarchy.
    """

    name: str
    label_space: int
    weight: int = 2
    knowledge: str = KnowledgeModel.MAP_WITH_POSITION.value
    exploration: str | None = None

    def __post_init__(self) -> None:
        # Only weighted algorithms (registry metadata) consume the weight;
        # pin it to the default elsewhere so e.g. Cheap(weight=3) and
        # Cheap(weight=2) are equal, hash alike, and share one run-store
        # entry.  Names not (yet) registered keep their weight untouched:
        # pinning an unknown name would silently corrupt the weight of a
        # weighted algorithm whose provider just isn't imported yet.
        entry = ALGORITHMS.lookup(self.name)
        if (
            entry is not None
            and not entry.metadata.get("weighted", False)
            and self.weight != 2
        ):
            object.__setattr__(self, "weight", 2)

    def build(self, graph: PortLabeledGraph) -> RendezvousAlgorithm:
        entry = ALGORITHMS.entry(self.name)  # SpecError if unknown
        if self.exploration is not None:
            exploration = resolve_exploration(self.exploration, self.knowledge).build(
                graph
            )
        else:
            knowledge = KNOWLEDGE_MODELS.get(self.knowledge)  # SpecError if unknown
            exploration = best_exploration(graph, knowledge)
        if entry.metadata.get("weighted", False):
            return entry.build(exploration, self.label_space, self.weight)
        return entry.build(exploration, self.label_space)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "name": self.name,
            "label_space": self.label_space,
            "weight": self.weight,
            "knowledge": self.knowledge,
        }
        # Emitted only when set, so the content hashes (and run-store
        # entries) of knowledge-derived specs are unchanged.
        if self.exploration is not None:
            payload["exploration"] = self.exploration
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AlgorithmSpec":
        return cls(
            name=payload["name"],
            label_space=payload["label_space"],
            weight=payload.get("weight", 2),
            knowledge=payload.get("knowledge", KnowledgeModel.MAP_WITH_POSITION.value),
            exploration=payload.get("exploration"),
        )


#: The per-configuration execution substrates a worker can run.
SIM_ENGINES = ("reactive", "compiled", "batch", "cube")


@dataclass(frozen=True)
class JobSpec:
    """One unit of adversary-search work, serializable by value.

    ``shard=None`` describes the whole sweep; ``shard=(lo, hi)`` restricts
    it to the configurations with global indices in ``[lo, hi)``.
    ``horizon=None`` means each execution's round budget is derived from
    the algorithm's own schedule (``delay + max schedule length``), which
    is how :func:`repro.api.sweep_objects` runs.

    ``engine`` picks the per-configuration substrate a worker uses:
    ``"reactive"`` (the round simulator), ``"compiled"`` (the trajectory
    engine of :mod:`repro.sim.compiled`) or ``"batch"`` (the vectorized
    NumPy engine of :mod:`repro.sim.batch`); the latter two are valid
    only for schedule-driven algorithms, and ``"batch"`` additionally
    needs the optional NumPy dependency in every worker process.  Reports
    are byte-identical whichever substrate runs.  A non-default engine
    participates in the content key, so a run-store entry records exactly
    how it was produced -- while reactive specs serialize exactly as
    before this field existed, keeping their run-store entries reachable.
    """

    algorithm: AlgorithmSpec
    graph: GraphSpec
    delays: tuple[int, ...] = (0,)
    label_pairs: tuple[tuple[int, int], ...] | None = None
    fix_first_start: bool = False
    presence: str = "from-start"
    horizon: int | None = None
    shard: tuple[int, int] | None = None
    engine: str = "reactive"

    def __post_init__(self) -> None:
        if self.engine not in SIM_ENGINES:
            raise ValueError(
                f"unknown simulation engine {self.engine!r}; "
                f"choose from {list(SIM_ENGINES)}"
            )

    # ------------------------------------------------------------------
    # Shard algebra
    # ------------------------------------------------------------------

    def sweep_spec(self) -> "JobSpec":
        """The whole-sweep spec this shard belongs to."""
        return replace(self, shard=None) if self.shard is not None else self

    def shard_spec(self, lo: int, hi: int) -> "JobSpec":
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid shard bounds [{lo}, {hi})")
        return replace(self, shard=(lo, hi))

    # ------------------------------------------------------------------
    # Configuration space
    # ------------------------------------------------------------------

    def resolved_label_pairs(self) -> tuple[tuple[int, int], ...]:
        if self.label_pairs is not None:
            return self.label_pairs
        return tuple(all_label_pairs(self.algorithm.label_space))

    def config_space_size(self, graph: PortLabeledGraph | None = None) -> int:
        """Total number of configurations, without simulating any."""
        graph = graph if graph is not None else self.graph.build()
        starts = len(default_start_pairs(graph, self.fix_first_start))
        return len(self.resolved_label_pairs()) * starts * len(self.delays)

    def iter_configs(self, graph: PortLabeledGraph) -> Iterator[Configuration]:
        """All configurations in the global (shard-index) order."""
        return configurations(
            graph,
            self.resolved_label_pairs(),
            delays=self.delays,
            fix_first_start=self.fix_first_start,
        )

    def iter_shard(
        self, graph: PortLabeledGraph
    ) -> Iterator[tuple[int, Configuration]]:
        """The shard's ``(global_index, configuration)`` pairs.

        The configuration space is a pure product (label pairs x start
        pairs x delays), so an index maps to its configuration by
        ``divmod`` -- a shard costs ``O(hi - lo)`` regardless of where in
        the global order it starts, instead of enumerating and discarding
        every preceding configuration.  The decomposition mirrors the
        nesting order of :func:`repro.sim.adversary.configurations`
        (labels outermost, delays innermost), sharing its
        :func:`~repro.sim.adversary.default_start_pairs` enumeration so
        the two orderings cannot drift.
        """
        label_pairs = self.resolved_label_pairs()
        start_pairs = default_start_pairs(graph, self.fix_first_start)
        delays = self.delays
        per_label = len(start_pairs) * len(delays)
        total = len(label_pairs) * per_label
        lo, hi = self.shard if self.shard is not None else (0, total)
        for index in range(lo, min(hi, total)):
            label_index, rest = divmod(index, per_label)
            start_index, delay_index = divmod(rest, len(delays))
            yield index, Configuration(
                labels=label_pairs[label_index],
                starts=start_pairs[start_index],
                delay=delays[delay_index],
            )

    # ------------------------------------------------------------------
    # Serialization and content addressing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "algorithm": self.algorithm.to_dict(),
            "graph": self.graph.to_dict(),
            "delays": list(self.delays),
            "label_pairs": (
                None
                if self.label_pairs is None
                else [list(pair) for pair in self.label_pairs]
            ),
            "fix_first_start": self.fix_first_start,
            "presence": self.presence,
            "horizon": self.horizon,
            "shard": None if self.shard is None else list(self.shard),
        }
        if self.engine != "reactive":
            # Emitted only when not the default, so reactive sweeps keep
            # their pre-engine content hashes -- and hence their run-store
            # entries -- unchanged.
            payload["engine"] = self.engine
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        label_pairs = payload.get("label_pairs")
        shard = payload.get("shard")
        return cls(
            algorithm=AlgorithmSpec.from_dict(payload["algorithm"]),
            graph=GraphSpec.from_dict(payload["graph"]),
            delays=tuple(payload["delays"]),
            label_pairs=(
                None
                if label_pairs is None
                else tuple((a, b) for a, b in label_pairs)
            ),
            fix_first_start=payload["fix_first_start"],
            presence=payload.get("presence", "from-start"),
            horizon=payload.get("horizon"),
            shard=None if shard is None else (shard[0], shard[1]),
            engine=payload.get("engine", "reactive"),
        )

    def key(self) -> str:
        """Content hash of this spec (including the shard slice, if any)."""
        return _content_key(self.to_dict())

    def sweep_key(self) -> str:
        """Content hash of the whole sweep this spec belongs to."""
        return self.sweep_spec().key()
