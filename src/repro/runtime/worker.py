"""The function a worker process executes: one shard of adversary search.

:func:`run_shard` is deliberately a module-level function of one picklable
argument so it can be submitted to a ``ProcessPoolExecutor`` unchanged.
Graphs and algorithms are rebuilt from the spec on first use and memoised
per process (pool workers are long-lived, so a worker pays the
construction cost once per distinct job, not once per shard).

The spec's ``engine`` picks the per-configuration substrate: the reactive
round simulator, the compiled trajectory engine
(:mod:`repro.sim.compiled`), the vectorized batch engine
(:mod:`repro.sim.batch`), or the pruned cube engine
(:mod:`repro.sim.cube`).  The compiled ``(label, start)`` trajectory
table and the NumPy engines' dense timeline arrays are likewise memoised
per process, so shards of one sweep share compilations.  The NumPy
substrates never walk the shard configuration by configuration: the
shard's lazy ``(index, configuration)`` stream is measured in bounded
vectorized chunks.  Whatever the substrate, the measured ``(time, cost)``
per configuration -- and hence the shard report -- is identical.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Iterator

from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.registry import PRESENCE_MODELS
from repro.runtime.report import ConfigRef, ExtremeSummary, ShardReport, ShardTiming
from repro.runtime.spec import AlgorithmSpec, GraphSpec, JobSpec
from repro.sim.adversary import Configuration, default_horizon
from repro.sim.batch import BatchTimelineTable, evaluate_stream
from repro.sim.compiled import TrajectoryTable
from repro.sim.simulator import simulate_rendezvous


@lru_cache(maxsize=16)
def _materialize(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> tuple[PortLabeledGraph, RendezvousAlgorithm]:
    graph = graph_spec.build()
    return graph, algorithm_spec.build(graph)


@lru_cache(maxsize=8)
def _trajectory_table(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> TrajectoryTable:
    graph, algorithm = _materialize(graph_spec, algorithm_spec)
    return TrajectoryTable(graph, algorithm)


@lru_cache(maxsize=8)
def _batch_table(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> BatchTimelineTable:
    graph, algorithm = _materialize(graph_spec, algorithm_spec)
    return BatchTimelineTable(graph, algorithm)


@lru_cache(maxsize=8)
def _cube_table(graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec):
    # Imported lazily so NumPy-free workers can run the other engines.
    from repro.sim.cube import CubeTimelineTable

    graph, algorithm = _materialize(graph_spec, algorithm_spec)
    # prune=None resolves via REPRO_PRUNE, which pool/cluster workers
    # inherit from the submitting process -- pruned and unpruned shards
    # are byte-identical, so the knob never rides on the spec.
    return CubeTimelineTable(graph, algorithm)


class _ShardMeter:
    """Per-shard wall-clock bookkeeping, filled while the stream runs.

    Tables are memoised per process, so the per-shard table-build cost is
    the *delta* of the table's cumulative ``build_seconds`` across this
    shard (the first shard of a sweep pays the builds; later shards read
    the cache and report ~0).  Purely observational: the numbers ride
    back on the :class:`~repro.runtime.report.ShardTiming` and never
    influence the measurements.
    """

    def __init__(self) -> None:
        self.table_seconds = 0.0
        self.chunks = 0
        self._table = None
        self._build_start = 0.0

    def watch_table(self, table) -> None:
        self._table = table
        self._build_start = table.build_seconds

    def finish(self) -> None:
        if self._table is not None:
            self.table_seconds = self._table.build_seconds - self._build_start

    def on_chunk(self, size: int, seconds: float) -> None:
        self.chunks += 1


def _measured_stream(
    spec: JobSpec,
    graph: PortLabeledGraph,
    algorithm: RendezvousAlgorithm,
    presence,
    meter: _ShardMeter | None = None,
) -> Iterator[tuple[int, Configuration, int | None, int]]:
    """``(index, config, time, cost)`` for the shard, in enumeration order.

    One lazy stream per substrate, all field-identical: the shard loop in
    :func:`run_shard` cannot tell the engines apart.
    """

    def horizon_for(config: Configuration) -> int:
        return (
            spec.horizon
            if spec.horizon is not None
            else default_horizon(algorithm, config)
        )

    indexed = spec.iter_shard(graph)
    if spec.engine in ("batch", "cube"):
        table = (
            _cube_table(spec.graph, spec.algorithm)
            if spec.engine == "cube"
            else _batch_table(spec.graph, spec.algorithm)
        )
        if meter is not None:
            meter.watch_table(table)
        for index, config, _horizon, time_, cost in evaluate_stream(
            table,
            ((index, config, horizon_for(config)) for index, config in indexed),
            presence,
            on_chunk=meter.on_chunk if meter is not None else None,
        ):
            yield index, config, time_, cost
    elif spec.engine == "compiled":
        table = _trajectory_table(spec.graph, spec.algorithm)
        if meter is not None:
            meter.watch_table(table)
        for index, config in indexed:
            time_, cost = table.evaluate(config, horizon_for(config), presence)
            yield index, config, time_, cost
    else:
        for index, config in indexed:
            result = simulate_rendezvous(
                graph,
                algorithm,
                labels=config.labels,
                starts=config.starts,
                delay=config.delay,
                max_rounds=horizon_for(config),
                presence=presence,
            )
            yield index, config, (result.time if result.met else None), result.cost


def run_shard(spec: JobSpec) -> ShardReport:
    """Run every configuration in the spec's shard and keep the extremes.

    Semantically identical to
    :func:`repro.sim.adversary.worst_case_search` restricted to the slice:
    strict-``>`` updates walking the shard in enumeration order, so the
    record kept per metric is the one with the lowest global index among
    maximisers -- the invariant :func:`repro.runtime.report.merge_reports`
    relies on.
    """
    started = time.perf_counter()  # repro: allow(REP001): ShardTiming provenance
    graph, algorithm = _materialize(spec.graph, spec.algorithm)
    presence = PRESENCE_MODELS.get(spec.presence)  # SpecError if unknown
    lo, hi = spec.shard if spec.shard is not None else (0, spec.config_space_size(graph))

    worst_time: ExtremeSummary | None = None
    worst_cost: ExtremeSummary | None = None
    failures: list[ConfigRef] = []
    executions = 0
    meter = _ShardMeter()

    for index, config, time_, cost in _measured_stream(
        spec, graph, algorithm, presence, meter
    ):
        executions += 1
        if time_ is None:
            failures.append(
                ConfigRef(
                    index=index,
                    labels=config.labels,
                    starts=config.starts,
                    delay=config.delay,
                )
            )
            continue
        summary = ExtremeSummary(
            index=index,
            labels=config.labels,
            starts=config.starts,
            delay=config.delay,
            time=time_,
            cost=cost,
        )
        if worst_time is None or summary.time > worst_time.time:
            worst_time = summary
        if worst_cost is None or summary.cost > worst_cost.cost:
            worst_cost = summary

    meter.finish()
    return ShardReport(
        shard=(lo, hi),
        executions=executions,
        worst_time=worst_time,
        worst_cost=worst_cost,
        failures=tuple(failures),
        timing=ShardTiming(
            # repro: allow(REP001): ShardTiming rides the non-canonical
            # timing channel (compare=False; stripped from reports).
            seconds=round(time.perf_counter() - started, 6),
            table_seconds=round(meter.table_seconds, 6),
            engine=spec.engine,
            chunks=meter.chunks,
        ),
    )
