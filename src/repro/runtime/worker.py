"""The function a worker process executes: one shard of adversary search.

:func:`run_shard` is deliberately a module-level function of one picklable
argument so it can be submitted to a ``ProcessPoolExecutor`` unchanged.
Graphs and algorithms are rebuilt from the spec on first use and memoised
per process (pool workers are long-lived, so a worker pays the
construction cost once per distinct job, not once per shard).

The spec's ``engine`` picks the per-configuration substrate: the reactive
round simulator, the compiled trajectory engine
(:mod:`repro.sim.compiled`), or the vectorized batch engine
(:mod:`repro.sim.batch`).  The compiled ``(label, start)`` trajectory
table and the batch engine's dense per-label timeline arrays are likewise
memoised per process, so shards of one sweep share compilations.  The
batch substrate never walks the shard configuration by configuration: the
shard's lazy ``(index, configuration)`` stream is measured in bounded
vectorized chunks.  Whatever the substrate, the measured ``(time, cost)``
per configuration -- and hence the shard report -- is identical.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

from repro.core.base import RendezvousAlgorithm
from repro.graphs.port_graph import PortLabeledGraph
from repro.registry import PRESENCE_MODELS
from repro.runtime.report import ConfigRef, ExtremeSummary, ShardReport
from repro.runtime.spec import AlgorithmSpec, GraphSpec, JobSpec
from repro.sim.adversary import Configuration, default_horizon
from repro.sim.batch import BatchTimelineTable, evaluate_stream
from repro.sim.compiled import TrajectoryTable
from repro.sim.simulator import simulate_rendezvous


@lru_cache(maxsize=16)
def _materialize(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> tuple[PortLabeledGraph, RendezvousAlgorithm]:
    graph = graph_spec.build()
    return graph, algorithm_spec.build(graph)


@lru_cache(maxsize=8)
def _trajectory_table(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> TrajectoryTable:
    graph, algorithm = _materialize(graph_spec, algorithm_spec)
    return TrajectoryTable(graph, algorithm)


@lru_cache(maxsize=8)
def _batch_table(
    graph_spec: GraphSpec, algorithm_spec: AlgorithmSpec
) -> BatchTimelineTable:
    graph, algorithm = _materialize(graph_spec, algorithm_spec)
    return BatchTimelineTable(graph, algorithm)


def _measured_stream(
    spec: JobSpec,
    graph: PortLabeledGraph,
    algorithm: RendezvousAlgorithm,
    presence,
) -> Iterator[tuple[int, Configuration, int | None, int]]:
    """``(index, config, time, cost)`` for the shard, in enumeration order.

    One lazy stream per substrate, all field-identical: the shard loop in
    :func:`run_shard` cannot tell the engines apart.
    """

    def horizon_for(config: Configuration) -> int:
        return (
            spec.horizon
            if spec.horizon is not None
            else default_horizon(algorithm, config)
        )

    indexed = spec.iter_shard(graph)
    if spec.engine == "batch":
        table = _batch_table(spec.graph, spec.algorithm)
        for index, config, _horizon, time, cost in evaluate_stream(
            table,
            ((index, config, horizon_for(config)) for index, config in indexed),
            presence,
        ):
            yield index, config, time, cost
    elif spec.engine == "compiled":
        table = _trajectory_table(spec.graph, spec.algorithm)
        for index, config in indexed:
            time, cost = table.evaluate(config, horizon_for(config), presence)
            yield index, config, time, cost
    else:
        for index, config in indexed:
            result = simulate_rendezvous(
                graph,
                algorithm,
                labels=config.labels,
                starts=config.starts,
                delay=config.delay,
                max_rounds=horizon_for(config),
                presence=presence,
            )
            yield index, config, (result.time if result.met else None), result.cost


def run_shard(spec: JobSpec) -> ShardReport:
    """Run every configuration in the spec's shard and keep the extremes.

    Semantically identical to
    :func:`repro.sim.adversary.worst_case_search` restricted to the slice:
    strict-``>`` updates walking the shard in enumeration order, so the
    record kept per metric is the one with the lowest global index among
    maximisers -- the invariant :func:`repro.runtime.report.merge_reports`
    relies on.
    """
    graph, algorithm = _materialize(spec.graph, spec.algorithm)
    presence = PRESENCE_MODELS.get(spec.presence)  # SpecError if unknown
    lo, hi = spec.shard if spec.shard is not None else (0, spec.config_space_size(graph))

    worst_time: ExtremeSummary | None = None
    worst_cost: ExtremeSummary | None = None
    failures: list[ConfigRef] = []
    executions = 0

    for index, config, time, cost in _measured_stream(spec, graph, algorithm, presence):
        executions += 1
        if time is None:
            failures.append(
                ConfigRef(
                    index=index,
                    labels=config.labels,
                    starts=config.starts,
                    delay=config.delay,
                )
            )
            continue
        summary = ExtremeSummary(
            index=index,
            labels=config.labels,
            starts=config.starts,
            delay=config.delay,
            time=time,
            cost=cost,
        )
        if worst_time is None or summary.time > worst_time.time:
            worst_time = summary
        if worst_cost is None or summary.cost > worst_cost.cost:
            worst_cost = summary

    return ShardReport(
        shard=(lo, hi),
        executions=executions,
        worst_time=worst_time,
        worst_cost=worst_cost,
        failures=tuple(failures),
    )
