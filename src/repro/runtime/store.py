"""Content-addressed on-disk store of completed shards.

Layout (under ``.repro_cache/`` by default)::

    .repro_cache/
      runs/
        <sweep_key>.jsonl     one file per sweep (sha256 of its JobSpec)

Each file starts with a ``job`` header line carrying the full spec (for
humans and forensics -- the filename alone already identifies the sweep)
followed by one ``shard`` line per completed shard.  Records are written
with a single ``O_APPEND`` syscall each, so concurrent sweeps of the same
spec interleave at record granularity rather than tearing each other's
lines, and a process killed mid-write leaves at most one truncated
trailing line.  :meth:`RunStore.load` skips undecodable lines (re-running
at most the affected shards) instead of failing.  A spec hash names an
immutable computation *within one library version* -- the library and
record-format versions are part of the filename, so results computed by
different code never serve (or evict) each other -- and the store never
invalidates in-place: :meth:`clear` (or deleting the directory) is the
only eviction.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.runtime.report import ShardReport
from repro.runtime.spec import JobSpec

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped to 2 when shard records gained the optional ``timing`` section
#: (readers tolerate its absence, but the filename isolation keeps record
#: formats from mixing within one file).
_FORMAT_VERSION = 2


def _library_version() -> str:
    # Imported lazily: repro/__init__ imports this package.
    from repro import __version__

    return __version__


class RunStore:
    """A directory of append-only JSONL shard records, keyed by spec hash."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    # ------------------------------------------------------------------

    def path_for(self, spec: JobSpec) -> Path:
        """The JSONL file holding the given spec's sweep.

        The library version and record-format version are part of the
        filename: a spec hash cannot see code edits, so results computed
        by different versions must not share a file.  Filename isolation
        keeps concurrent checkouts of different versions from evicting
        each other's caches (an in-file version check would make each
        delete the other's work on every read) and from appending
        mixed-format records to one file.
        """
        return (
            self.root
            / "runs"
            / f"{spec.sweep_key()}-v{_library_version()}-f{_FORMAT_VERSION}.jsonl"
        )

    def load(
        self, spec: JobSpec, telemetry: Telemetry = NULL_TELEMETRY
    ) -> dict[tuple[int, int], ShardReport]:
        """All completed shards of the spec's sweep, keyed by shard bounds.

        Undecodable lines -- a truncated trailing line after an
        interruption, or (pathologically) a torn line from a concurrent
        writer on a filesystem without atomic appends -- are skipped, not
        fatal: the affected shards simply re-execute.  They are counted,
        though: each torn line costs a shard of recomputation, so a
        ``warnings.warn`` (and a telemetry warning event plus the
        ``store.torn_lines`` counter) names the cache file instead of
        letting resumed runs quietly redo work.
        """
        path = self.path_for(spec)
        if not path.exists():
            return {}
        shards: dict[tuple[int, int], ShardReport] = {}
        torn = 0
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload: dict[str, Any] = json.loads(line)
                except json.JSONDecodeError:
                    torn += 1
                    continue
                if payload.get("kind") != "shard":
                    # Headers (and unknown record kinds) are informational;
                    # version skew never reaches here because both the
                    # library and record-format versions are part of the
                    # filename.
                    continue
                report = ShardReport.from_dict(payload["report"])
                shards[report.shard] = report
        if torn:
            message = (
                f"run store {path} contains {torn} undecodable line(s) "
                "(interrupted write or corruption); the affected shards "
                "will re-execute"
            )
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            telemetry.warn(message, file=str(path), lines=torn)
            telemetry.count("store.torn_lines", torn)
        return shards

    def append(self, spec: JobSpec, report: ShardReport) -> None:
        """Persist one completed shard (writing the header on first use).

        Each record goes out as one ``O_APPEND`` write, which POSIX makes
        atomic with respect to other appenders, so two sweeps of the same
        spec running at once cannot tear each other's lines (at worst the
        header or a shard appears twice; :meth:`load` handles both).
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        if not path.exists():
            lines.append(
                {
                    "kind": "job",
                    "version": _FORMAT_VERSION,
                    "library": _library_version(),
                    "spec": spec.sweep_spec().to_dict(),
                }
            )
        lines.append({"kind": "shard", "report": report.to_dict()})
        payload = "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)

    def clear(self) -> int:
        """Delete every stored run; returns the number of files removed."""
        runs = self.root / "runs"
        if not runs.exists():
            return 0
        removed = 0
        for path in sorted(runs.glob("*.jsonl")):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"RunStore(root={str(self.root)!r})"
