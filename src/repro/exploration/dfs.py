"""Depth-first exploration with a port-labeled map and a marked position.

Given the map and its own position, an agent can identify a DFS traversal
of a spanning tree rooted at wherever it currently stands.  The *open* tour
drops the final chain of backtracking moves (after the last new node there
is no reason to walk home), which caps the budget at ``2n - 3`` for every
graph with ``n >= 2`` nodes -- the bound the paper quotes, optimal e.g. on
the star.  The *closed* tour keeps the backtracks and returns to the start
in at most ``2n - 2`` moves; the try-all-DFS procedure builds on it.
"""

from __future__ import annotations

from repro.exploration.base import ExplorationProcedure
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


def dfs_walk_ports(
    graph: PortLabeledGraph, root: int, closed: bool = True
) -> list[int]:
    """The port sequence of a DFS traversal of ``graph`` from ``root``.

    Children are visited in increasing port order.  With ``closed=True``
    the walk returns to ``root`` (length ``2(n-1)``); otherwise trailing
    backtracks are stripped (length at most ``2n - 3`` for ``n >= 2``).
    """
    visited = {root}
    walk: list[tuple[int, bool]] = []  # (port, is_backtrack)

    # Iterative DFS: each stack frame is (node, entry_port, next_port).
    stack: list[tuple[int, int | None, int]] = [(root, None, 0)]
    while stack:
        node, entry_port, next_port = stack.pop()
        descended = False
        for port in range(next_port, graph.degree(node)):
            neighbor, arrival = graph.neighbor_via(node, port)
            if neighbor in visited:
                continue
            visited.add(neighbor)
            walk.append((port, False))
            stack.append((node, entry_port, port + 1))
            stack.append((neighbor, arrival, 0))
            descended = True
            break
        if not descended and entry_port is not None:
            walk.append((entry_port, True))

    if not closed:
        while walk and walk[-1][1]:
            walk.pop()
    return [port for port, _ in walk]


class KnownMapDFS(ExplorationProcedure):
    """DFS exploration from the agent's (known) current map position.

    Budget: ``2n - 3`` open, ``2n - 2`` closed.  The port sequence is
    recomputed at execution time from the agent's actual position, so the
    procedure is valid "starting at any node" as the paper requires.
    """

    def __init__(self, graph: PortLabeledGraph, closed: bool = False):
        if graph.num_nodes < 2:
            raise ValueError("exploration needs at least 2 nodes")
        self.graph = graph
        self.closed = closed
        self.name = "dfs-closed" if closed else "dfs-open"

    @property
    def budget(self) -> int:
        n = self.graph.num_nodes
        return 2 * n - 2 if self.closed else max(1, 2 * n - 3)

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        graph = ctx.require_map()
        if graph.num_nodes != self.graph.num_nodes:
            raise ValueError("agent map does not match the procedure's graph")
        start = ctx.require_position()
        for port in dfs_walk_ports(graph, start, closed=self.closed):
            obs = yield port
        return obs
