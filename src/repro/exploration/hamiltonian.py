"""Hamiltonian-cycle exploration: ``E = n - 1`` when such a cycle exists.

The paper (Section 1.2): "if the graph has a Hamiltonian cycle, then E can
be taken as n - 1."  The cycle is found on the map by backtracking search
(exponential in general -- Hamiltonicity is NP-hard -- but instant on the
experiment-scale graphs); at execution time the agent, knowing its
position, follows the cycle for ``n - 1`` steps.
"""

from __future__ import annotations

from repro.exploration.base import ExplorationProcedure
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


def find_hamiltonian_cycle(graph: PortLabeledGraph) -> list[int] | None:
    """A Hamiltonian cycle as a node list (length ``n``), or ``None``.

    Plain backtracking with a degree-based pruning rule; deterministic.
    Intended for the small graphs used in experiments.
    """
    n = graph.num_nodes
    if n < 3:
        return None
    if any(graph.degree(u) < 2 for u in range(n)):
        return None

    neighbors = [sorted(set(graph.neighbors(u))) for u in range(n)]
    path = [0]
    on_path = [False] * n
    on_path[0] = True

    def extend() -> bool:
        if len(path) == n:
            return path[0] in neighbors[path[-1]]
        for candidate in neighbors[path[-1]]:
            if on_path[candidate]:
                continue
            path.append(candidate)
            on_path[candidate] = True
            if extend():
                return True
            path.pop()
            on_path[candidate] = False
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n + 100))
    try:
        found = extend()
    finally:
        sys.setrecursionlimit(old_limit)
    return list(path) if found else None


class HamiltonianExploration(ExplorationProcedure):
    """Follow a precomputed Hamiltonian cycle for ``n - 1`` steps."""

    name = "hamiltonian"

    def __init__(self, graph: PortLabeledGraph):
        cycle = find_hamiltonian_cycle(graph)
        if cycle is None:
            raise ValueError("graph has no Hamiltonian cycle (or none was found)")
        self.graph = graph
        self._cycle = cycle
        self._index_of = {node: i for i, node in enumerate(cycle)}

    @property
    def budget(self) -> int:
        return self.graph.num_nodes - 1

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        graph = ctx.require_map()
        position = ctx.require_position()
        n = graph.num_nodes
        index = self._index_of[position]
        for step in range(1, n):
            target = self._cycle[(index + step) % n]
            current = self._cycle[(index + step - 1) % n]
            obs = yield graph.port_to(current, target)
        return obs
