"""Exploration with a map but *no* marked position (paper Section 1.2).

The agent identifies, on its map, the closed DFS walk from every one of the
``n`` possible starting nodes, each a sequence of ``2n - 2`` exit ports.
From its physical position it tries the sequences one after another.  An
attempt aborts as soon as a prescribed port does not exist at the current
node (the only observable evidence of a wrong hypothesis); the agent then
retraces its actual path -- reversing through its recorded entry ports --
back to its physical starting node and tries the next hypothesis.  The
attempt matching the true starting node follows the genuine DFS and visits
every node.

Budget.  An attempt costs at most ``2n - 2`` forward moves plus at most the
same number of moves to retrace, so the procedure is safe within
``2n(2n - 2)`` rounds.  The paper quotes ``n(2n - 2)``, which does not
account for retracing after an attempt that consumes its whole sequence
without an unavailable port yet ends away from the start; we use the safe
budget and record the factor-2 discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.exploration.base import ExplorationProcedure
from repro.exploration.dfs import dfs_walk_ports
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


class TryAllDFS(ExplorationProcedure):
    """Try the closed DFS of every hypothetical start; abort and retrace."""

    name = "try-all-dfs"

    # The emitted ports depend only on the precomputed hypothesis walks and
    # the observation stream (degree checks, recorded entry ports) -- the
    # map is consulted only for its node count, never keyed by the agent's
    # position.  Rotated starts therefore trace rotated copies of one route.
    start_oblivious = True

    def __init__(self, graph: PortLabeledGraph):
        if graph.num_nodes < 2:
            raise ValueError("exploration needs at least 2 nodes")
        self.graph = graph
        self._sequences = [
            dfs_walk_ports(graph, root, closed=True) for root in range(graph.num_nodes)
        ]

    @property
    def budget(self) -> int:
        n = self.graph.num_nodes
        return 2 * n * (2 * n - 2)

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        graph = ctx.require_map()
        if graph.num_nodes != self.graph.num_nodes:
            raise ValueError("agent map does not match the procedure's graph")

        for sequence in self._sequences:
            # Forward phase: follow the hypothesis until a port is missing.
            entry_ports: list[int] = []
            for port in sequence:
                if port >= obs.degree:
                    break  # hypothesis refuted: this port does not exist here
                obs = yield port
                if obs.entry_port is None:
                    raise RuntimeError("moved but observed no entry port")
                entry_ports.append(obs.entry_port)
            # Retrace phase: walk the recorded path backwards to the start.
            while entry_ports:
                obs = yield entry_ports.pop()
        return obs
