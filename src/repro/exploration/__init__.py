"""Exploration procedures -- the substrate every rendezvous algorithm runs on.

The paper assumes each agent knows an upper bound ``E`` on exploration time
together with a procedure ``EXPLORE`` that visits all nodes within ``E``
rounds from any starting node (Section 1.2).  This package provides the
procedures the paper discusses:

* :class:`~repro.exploration.ring.RingExploration` -- ``E = n - 1`` on
  oriented rings (clockwise walk);
* :class:`~repro.exploration.dfs.KnownMapDFS` -- ``E = 2n - 3`` given a
  port-labeled map with a marked position;
* :class:`~repro.exploration.try_all_dfs.TryAllDFS` -- map without a marked
  position: try the DFS of every possible start, aborting and backtracking
  on port mismatches;
* :class:`~repro.exploration.euler.EulerianExploration` -- ``E = e - 1``
  when all degrees are even;
* :class:`~repro.exploration.hamiltonian.HamiltonianExploration` --
  ``E = n - 1`` when a Hamiltonian cycle exists;
* :class:`~repro.exploration.uxs.UXSExploration` -- map-free exploration by
  a universal exploration sequence (Reingold's construction is replaced by
  a verified randomized one; see DESIGN.md).

All procedures run for *exactly* ``budget`` rounds (idling after finishing),
matching the paper's convention that ``EXPLORE`` takes exactly ``E`` rounds.
"""

from repro.exploration.base import (
    ExplorationBudgetError,
    ExplorationProcedure,
    measure_exploration,
)
from repro.exploration.dfs import KnownMapDFS, dfs_walk_ports
from repro.exploration.euler import EulerianExploration, eulerian_circuit_ports
from repro.exploration.hamiltonian import HamiltonianExploration, find_hamiltonian_cycle
from repro.exploration.registry import KnowledgeModel, best_exploration
from repro.exploration.ring import RingExploration
from repro.exploration.try_all_dfs import TryAllDFS
from repro.exploration.uxs import UXSExploration, build_verified_uxs, is_uxs_for

__all__ = [
    "EulerianExploration",
    "ExplorationBudgetError",
    "ExplorationProcedure",
    "HamiltonianExploration",
    "KnowledgeModel",
    "KnownMapDFS",
    "RingExploration",
    "TryAllDFS",
    "UXSExploration",
    "best_exploration",
    "build_verified_uxs",
    "dfs_walk_ports",
    "eulerian_circuit_ports",
    "find_hamiltonian_cycle",
    "is_uxs_for",
    "measure_exploration",
]
