"""Choosing the best exploration procedure for a graph and knowledge model.

Section 1.2 of the paper walks through how ``E`` depends on what the agents
know: an oriented ring of known size gives ``E = n - 1``; a map with a
marked position gives ``E = 2n - 3`` by DFS (better if a Hamiltonian cycle
or an Eulerian circuit exists); a map without a marked position costs a
factor ``n`` more; with only a size bound, a UXS must be used.  This module
encodes that decision table.

It is also the provider for two named registries:
:data:`repro.registry.KNOWLEDGE_MODELS` (the enum members by value, so
scenario specs can name a knowledge model as data) and
:data:`repro.registry.EXPLORATIONS` (each procedure behind a uniform
``factory(graph)`` signature, with metadata naming the knowledge models it
serves).
"""

from __future__ import annotations

import random
from enum import Enum

from repro.exploration.base import ExplorationProcedure
from repro.exploration.dfs import KnownMapDFS
from repro.exploration.euler import EulerianExploration, has_eulerian_circuit
from repro.exploration.hamiltonian import HamiltonianExploration, find_hamiltonian_cycle
from repro.exploration.ring import RingExploration
from repro.exploration.try_all_dfs import TryAllDFS
from repro.exploration.uxs import UXSExploration, build_verified_uxs
from repro.graphs.port_graph import PortLabeledGraph
from repro.graphs.validation import is_oriented_ring
from repro.registry import EXPLORATIONS, KNOWLEDGE_MODELS


class KnowledgeModel(Enum):
    """What an agent knows about the network (paper Section 1.2)."""

    #: Port-labeled map with the agent's position marked on it.
    MAP_WITH_POSITION = "map-with-position"
    #: Port-labeled map, position unknown.
    MAP_WITHOUT_POSITION = "map-without-position"
    #: Only the graph itself is fixed; the agent gets a verified UXS for it.
    SIZE_BOUND_ONLY = "size-bound-only"


for _model in KnowledgeModel:
    KNOWLEDGE_MODELS.register(_model.value)(_model)


@EXPLORATIONS.register(
    "ring-clockwise", knowledge=("map-with-position", "map-without-position")
)
def _ring_exploration(graph: PortLabeledGraph) -> RingExploration:
    """``E = n - 1`` on oriented rings (requires the ring orientation)."""
    if not is_oriented_ring(graph):
        raise ValueError("ring-clockwise exploration needs an oriented ring")
    return RingExploration(graph.num_nodes)


@EXPLORATIONS.register("dfs-open", knowledge=("map-with-position",))
def _dfs_open(graph: PortLabeledGraph) -> KnownMapDFS:
    """``E = 2n - 3`` by open DFS of a map with a marked position."""
    return KnownMapDFS(graph)


@EXPLORATIONS.register("dfs-closed", knowledge=("map-with-position",))
def _dfs_closed(graph: PortLabeledGraph) -> KnownMapDFS:
    """``E = 2n - 2`` by closed DFS (returns to the start)."""
    return KnownMapDFS(graph, closed=True)


@EXPLORATIONS.register("eulerian", knowledge=("map-with-position",))
def _eulerian(graph: PortLabeledGraph) -> EulerianExploration:
    """``E = e - 1`` when every degree is even."""
    return EulerianExploration(graph)


@EXPLORATIONS.register("hamiltonian", knowledge=("map-with-position",))
def _hamiltonian(graph: PortLabeledGraph) -> HamiltonianExploration:
    """``E = n - 1`` when a Hamiltonian cycle exists."""
    return HamiltonianExploration(graph)


@EXPLORATIONS.register("try-all-dfs", knowledge=("map-without-position",))
def _try_all_dfs(graph: PortLabeledGraph) -> TryAllDFS:
    """Map without a marked position: try the DFS of every possible start."""
    return TryAllDFS(graph)


@EXPLORATIONS.register("uxs", knowledge=("size-bound-only",))
def _uxs(graph: PortLabeledGraph) -> UXSExploration:
    """A verified universal exploration sequence for the graph."""
    return UXSExploration(build_verified_uxs([graph]))


def best_exploration(
    graph: PortLabeledGraph,
    knowledge: KnowledgeModel = KnowledgeModel.MAP_WITH_POSITION,
    rng: random.Random | None = None,
    try_hamiltonian: bool = True,
) -> ExplorationProcedure:
    """The cheapest procedure available under ``knowledge`` for ``graph``.

    For :attr:`KnowledgeModel.MAP_WITH_POSITION` the choice follows the
    paper's hierarchy: oriented-ring walk (``n - 1``), Hamiltonian cycle
    (``n - 1``), Eulerian circuit (``e - 1``, if better than DFS), else
    open DFS (``2n - 3``).  ``try_hamiltonian=False`` skips the (worst-case
    exponential) cycle search on graphs known not to have one.
    """
    if knowledge is KnowledgeModel.MAP_WITH_POSITION:
        if is_oriented_ring(graph):
            return RingExploration(graph.num_nodes)
        if try_hamiltonian and find_hamiltonian_cycle(graph) is not None:
            return HamiltonianExploration(graph)
        dfs = KnownMapDFS(graph)
        if has_eulerian_circuit(graph) and graph.num_edges - 1 < dfs.budget:
            return EulerianExploration(graph)
        return dfs
    if knowledge is KnowledgeModel.MAP_WITHOUT_POSITION:
        if is_oriented_ring(graph):
            return RingExploration(graph.num_nodes)  # orientation makes maps moot
        return TryAllDFS(graph)
    if knowledge is KnowledgeModel.SIZE_BOUND_ONLY:
        sequence = build_verified_uxs([graph], rng=rng)
        return UXSExploration(sequence)
    raise ValueError(f"unknown knowledge model: {knowledge!r}")
