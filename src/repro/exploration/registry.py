"""Choosing the best exploration procedure for a graph and knowledge model.

Section 1.2 of the paper walks through how ``E`` depends on what the agents
know: an oriented ring of known size gives ``E = n - 1``; a map with a
marked position gives ``E = 2n - 3`` by DFS (better if a Hamiltonian cycle
or an Eulerian circuit exists); a map without a marked position costs a
factor ``n`` more; with only a size bound, a UXS must be used.  This module
encodes that decision table.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.graphs.port_graph import PortLabeledGraph
from repro.graphs.validation import is_oriented_ring
from repro.exploration.base import ExplorationProcedure
from repro.exploration.dfs import KnownMapDFS
from repro.exploration.euler import EulerianExploration, has_eulerian_circuit
from repro.exploration.hamiltonian import HamiltonianExploration, find_hamiltonian_cycle
from repro.exploration.ring import RingExploration
from repro.exploration.try_all_dfs import TryAllDFS
from repro.exploration.uxs import UXSExploration, build_verified_uxs


class KnowledgeModel(Enum):
    """What an agent knows about the network (paper Section 1.2)."""

    #: Port-labeled map with the agent's position marked on it.
    MAP_WITH_POSITION = "map-with-position"
    #: Port-labeled map, position unknown.
    MAP_WITHOUT_POSITION = "map-without-position"
    #: Only the graph itself is fixed; the agent gets a verified UXS for it.
    SIZE_BOUND_ONLY = "size-bound-only"


def best_exploration(
    graph: PortLabeledGraph,
    knowledge: KnowledgeModel = KnowledgeModel.MAP_WITH_POSITION,
    rng: random.Random | None = None,
    try_hamiltonian: bool = True,
) -> ExplorationProcedure:
    """The cheapest procedure available under ``knowledge`` for ``graph``.

    For :attr:`KnowledgeModel.MAP_WITH_POSITION` the choice follows the
    paper's hierarchy: oriented-ring walk (``n - 1``), Hamiltonian cycle
    (``n - 1``), Eulerian circuit (``e - 1``, if better than DFS), else
    open DFS (``2n - 3``).  ``try_hamiltonian=False`` skips the (worst-case
    exponential) cycle search on graphs known not to have one.
    """
    if knowledge is KnowledgeModel.MAP_WITH_POSITION:
        if is_oriented_ring(graph):
            return RingExploration(graph.num_nodes)
        if try_hamiltonian and find_hamiltonian_cycle(graph) is not None:
            return HamiltonianExploration(graph)
        dfs = KnownMapDFS(graph)
        if has_eulerian_circuit(graph) and graph.num_edges - 1 < dfs.budget:
            return EulerianExploration(graph)
        return dfs
    if knowledge is KnowledgeModel.MAP_WITHOUT_POSITION:
        if is_oriented_ring(graph):
            return RingExploration(graph.num_nodes)  # orientation makes maps moot
        return TryAllDFS(graph)
    if knowledge is KnowledgeModel.SIZE_BOUND_ONLY:
        sequence = build_verified_uxs([graph], rng=rng)
        return UXSExploration(sequence)
    raise ValueError(f"unknown knowledge model: {knowledge!r}")
