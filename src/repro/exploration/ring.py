"""Exploration of an oriented ring: walk clockwise ``n - 1`` steps.

This is the optimal exploration on rings and the procedure the paper fixes
for its lower-bound setting (Section 3): ``E = n - 1``.  No map or position
knowledge is needed beyond the ring's size -- orientation makes port 0
"clockwise" at every node.
"""

from __future__ import annotations

from repro.exploration.base import ExplorationProcedure
from repro.graphs.orientation import CLOCKWISE
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


class RingExploration(ExplorationProcedure):
    """Clockwise walk of length ``n - 1`` on an oriented ring of known size."""

    name = "ring-clockwise"

    # The route is the fixed port sequence (CLOCKWISE x (n - 1)); no
    # position or map lookup is ever consulted, so rotated starts trace
    # rotated copies of the same walk -- the property the cube engine's
    # orbit reduction (repro.sim.prune) requires by construction.
    start_oblivious = True

    def __init__(self, ring_size: int):
        if ring_size < 3:
            raise ValueError(f"a ring has at least 3 nodes, got {ring_size}")
        self.ring_size = ring_size

    @property
    def budget(self) -> int:
        return self.ring_size - 1

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        for _ in range(self.ring_size - 1):
            if obs.degree != 2:
                raise ValueError(
                    "RingExploration used on a non-ring: node of degree "
                    f"{obs.degree} encountered"
                )
            obs = yield CLOCKWISE
        return obs
