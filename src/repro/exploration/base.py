"""Base class and execution harness for exploration procedures.

An exploration procedure is a reusable sub-behaviour (see
:mod:`repro.sim.program`): given the agent's context and current
observation it yields actions.  :meth:`ExplorationProcedure.execute` wraps
the raw movement generator so that the behaviour lasts *exactly*
``budget`` rounds -- the paper's ``EXPLORE`` always takes exactly ``E``
rounds, waiting out any remainder -- and fails loudly if the movement
would exceed the budget (an incorrect budget must never be papered over).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour, idle


class ExplorationBudgetError(RuntimeError):
    """An exploration emitted more actions than its declared budget ``E``."""


class ExplorationProcedure(ABC):
    """A procedure that visits every node within ``budget`` rounds.

    Subclasses implement :meth:`moves`, the raw movement generator; users
    call :meth:`execute`, which enforces and pads to the exact budget.
    """

    #: Human-readable name used in reports.
    name: str = "exploration"

    #: True when :meth:`moves` emits a port sequence that depends only on
    #: the observation stream (clock, degree, entry ports) -- never on the
    #: agent's absolute position or a map lookup keyed by node identity.
    #: On a graph whose rotation is a port-preserving automorphism, such a
    #: procedure traces rotated copies of one route from every start,
    #: which is what lets the cube engine (:mod:`repro.sim.prune`) derive
    #: all-start trajectories from a single compilation.  Deliberately
    #: conservative: ``False`` here; a procedure must only declare ``True``
    #: when the property holds by construction (fixed port sequences).
    start_oblivious: bool = False

    @property
    @abstractmethod
    def budget(self) -> int:
        """The bound ``E``: the procedure finishes within this many rounds."""

    @abstractmethod
    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        """Yield the exploration's actions; return the final observation."""

    def execute(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        """Run :meth:`moves`, then idle until exactly ``budget`` rounds passed.

        Usage inside an agent program::

            obs = yield from procedure.execute(ctx, obs)
        """
        budget = self.budget
        taken = 0
        inner = self.moves(ctx, obs)
        try:
            action = next(inner)
            while True:
                if taken == budget:
                    raise ExplorationBudgetError(
                        f"{self.name} tried to act in round {taken + 1} "
                        f"of a budget of {budget}"
                    )
                obs = yield action
                taken += 1
                action = inner.send(obs)
        except StopIteration as stop:
            if stop.value is not None:
                obs = stop.value
        obs = yield from idle(budget - taken, obs)
        return obs


def measure_exploration(
    procedure: ExplorationProcedure,
    graph,
    start_node: int,
    provide_map: bool = True,
    provide_position: bool = True,
) -> tuple[set[int], int]:
    """Run a procedure solo and report ``(visited_nodes, moves_used)``.

    This harness is how tests certify the exploration contract: starting
    from every node, all nodes are visited and at most ``budget`` moves are
    used.  It drives the movement generator directly against the graph,
    bypassing the round simulator (no second agent is involved).
    """
    from repro.sim.program import AgentContext  # local import to avoid cycles

    position = start_node
    entry_port: int | None = None
    visited = {position}
    moves_used = 0

    ctx = AgentContext(
        label=1,
        graph=graph if provide_map else None,
        position_oracle=(lambda: position) if provide_position else None,
    )
    obs = Observation(clock=0, degree=graph.degree(position), entry_port=None)
    gen = procedure.execute(ctx, obs)
    try:
        action = next(gen)
        clock = 0
        while True:
            clock += 1
            if action is not None:
                position, entry_port = graph.neighbor_via(position, action)
                visited.add(position)
                moves_used += 1
            obs = Observation(
                clock=clock, degree=graph.degree(position), entry_port=entry_port
            )
            action = gen.send(obs)
    except StopIteration:
        pass
    return visited, moves_used
