"""Universal exploration sequences (UXS).

A UXS for a class of port-labeled graphs is a sequence of integers
``a_1, ..., a_k`` such that the walk it induces -- an agent that entered
its current node through port ``p`` leaves through port
``(p + a_i) mod degree`` (with the convention ``p = 0`` before the first
move) -- visits all nodes of every graph in the class, from every starting
node.  Reingold [44] constructs polynomial-length UXS in logarithmic
space; that construction is a deep derandomization result far outside the
scope of a simulation library, so here a UXS is *generated randomly and
verified exhaustively* against an explicit corpus of graphs
(:func:`build_verified_uxs`).  For simulation purposes the two are
interchangeable: agents only consume the sequence, and the verifier proves
the exploration property for every graph the experiments use.  See
DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.exploration.base import ExplorationProcedure
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


def uxs_walk(
    graph: PortLabeledGraph, start: int, sequence: Sequence[int]
) -> list[int]:
    """The node sequence of the walk induced by ``sequence`` from ``start``."""
    position = start
    entry = 0  # convention: virtual entry port 0 before the first move
    walk = [position]
    for term in sequence:
        degree = graph.degree(position)
        exit_port = (entry + term) % degree
        position, entry = graph.neighbor_via(position, exit_port)
        walk.append(position)
    return walk


def is_uxs_for(
    sequence: Sequence[int], graphs: Iterable[PortLabeledGraph]
) -> bool:
    """True iff ``sequence`` explores every graph from every start node."""
    for graph in graphs:
        target = set(range(graph.num_nodes))
        for start in range(graph.num_nodes):
            if set(uxs_walk(graph, start, sequence)) != target:
                return False
    return True


def build_verified_uxs(
    graphs: Sequence[PortLabeledGraph],
    rng: random.Random | None = None,
    initial_length: int | None = None,
    max_length: int = 1 << 20,
) -> list[int]:
    """Search for a sequence that provably explores every given graph.

    Random sequences of geometrically growing length are drawn until one
    passes :func:`is_uxs_for`.  A random walk of length ``O(e * n * log n)``
    covers a connected graph with high probability (Aleliunas et al. [2]),
    so the search terminates quickly in practice; ``max_length`` bounds the
    search deterministically.
    """
    if not graphs:
        raise ValueError("need at least one graph to verify against")
    rng = rng or random.Random(0xBADC0DE)
    max_degree = max(graph.max_degree() for graph in graphs)
    if initial_length is None:
        worst = max(
            graph.num_edges * graph.num_nodes for graph in graphs
        )
        initial_length = max(8, worst)
    length = initial_length
    while length <= max_length:
        for _ in range(8):  # several attempts per length tier
            candidate = [rng.randrange(max_degree) for _ in range(length)]
            if is_uxs_for(candidate, graphs):
                return candidate
        length *= 2
    raise RuntimeError(
        f"no verified UXS of length <= {max_length} found; "
        "enlarge max_length or shrink the graph corpus"
    )


class UXSExploration(ExplorationProcedure):
    """Map-free exploration driven by a (verified) UXS.

    The procedure needs neither a map nor a position oracle: it reads only
    the degree and entry port from its observations.  Its budget is the
    sequence length.
    """

    name = "uxs"

    # Emits ``(entry + term) % degree`` -- a function of the fixed sequence
    # and the observation stream alone, with no position or map access, so
    # rotated starts trace rotated copies of the same walk.
    start_oblivious = True

    def __init__(self, sequence: Sequence[int]):
        if not sequence:
            raise ValueError("a UXS must be non-empty")
        self._sequence = list(sequence)

    @property
    def sequence(self) -> list[int]:
        return list(self._sequence)

    @property
    def budget(self) -> int:
        return len(self._sequence)

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        # The first step uses the virtual entry port 0 -- the same convention
        # the verifier uses -- even if the agent moved before this
        # exploration began (e.g., in an earlier EXPLORE segment).
        entry = 0
        for term in self._sequence:
            obs = yield (entry + term) % obs.degree
            if obs.entry_port is None:
                raise RuntimeError("moved but observed no entry port")
            entry = obs.entry_port
        return obs
