"""Eulerian-circuit exploration: ``E = e - 1`` when all degrees are even.

The paper (Section 1.2): "If the graph has an Eulerian cycle, then E can be
taken as e - 1, where e is the number of edges."  Traversing the first
``e - 1`` edges of an Eulerian circuit visits every node: each node has
even degree ``>= 2``, so at least one of its incident edges is among the
traversed ones.

The circuit is computed on the agent's map from its marked position with
Hierholzer's algorithm, expressed directly over ports.
"""

from __future__ import annotations

from repro.exploration.base import ExplorationProcedure
from repro.graphs.port_graph import PortLabeledGraph
from repro.sim.observation import Observation
from repro.sim.program import AgentContext, SubBehaviour


def has_eulerian_circuit(graph: PortLabeledGraph) -> bool:
    """True iff the (connected) graph has all degrees even."""
    return all(graph.degree(u) % 2 == 0 for u in range(graph.num_nodes))


def eulerian_circuit_ports(graph: PortLabeledGraph, start: int) -> list[int]:
    """Exit-port sequence of an Eulerian circuit from ``start`` (Hierholzer).

    Raises :class:`ValueError` if some degree is odd.
    """
    if not has_eulerian_circuit(graph):
        raise ValueError("graph has odd-degree nodes; no Eulerian circuit exists")

    used = [[False] * graph.degree(u) for u in range(graph.num_nodes)]
    next_unused = [0] * graph.num_nodes

    # Hierholzer: walk until stuck (necessarily back at the subwalk's own
    # start), splicing detours in as we unwind the stack.
    stack: list[tuple[int, int | None]] = [(start, None)]  # (node, port used to leave predecessor)
    circuit_ports: list[int] = []
    path: list[tuple[int, int]] = []  # (node, exit_port) of the current walk

    node = start
    while stack or path:
        # Advance next_unused[node] past consumed ports.
        while next_unused[node] < graph.degree(node) and used[node][next_unused[node]]:
            next_unused[node] += 1
        if next_unused[node] < graph.degree(node):
            port = next_unused[node]
            used[node][port] = True
            neighbor, arrival = graph.neighbor_via(node, port)
            used[neighbor][arrival] = True
            path.append((node, port))
            node = neighbor
        else:
            if not path:
                break
            # Stuck: back up one step of the walk; its exit port is final.
            prev_node, exit_port = path.pop()
            circuit_ports.append(exit_port)
            node = prev_node
    circuit_ports.reverse()
    if len(circuit_ports) != graph.num_edges:
        raise ValueError("graph is disconnected; Eulerian circuit covers only part")
    return circuit_ports


class EulerianExploration(ExplorationProcedure):
    """Follow an Eulerian circuit from the current position for ``e - 1`` moves."""

    name = "eulerian"

    def __init__(self, graph: PortLabeledGraph):
        if not has_eulerian_circuit(graph):
            raise ValueError("EulerianExploration requires all degrees even")
        self.graph = graph

    @property
    def budget(self) -> int:
        return self.graph.num_edges - 1

    def moves(self, ctx: AgentContext, obs: Observation) -> SubBehaviour:
        graph = ctx.require_map()
        start = ctx.require_position()
        ports = eulerian_circuit_ports(graph, start)
        for port in ports[:-1]:  # the final edge is redundant for visiting
            obs = yield port
        return obs
