"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail; ``pip install -e . --no-use-pep517`` uses this shim instead.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
