"""Regenerate the EXPERIMENTS.md verdict table from campaign reports.

The table between the ``BEGIN/END GENERATED VERDICT TABLE`` markers in
EXPERIMENTS.md is generated, never hand-edited: each row is the
``exp_id`` / ``claim`` / ``verdict`` of one per-experiment JSON report
written by ``python -m repro experiments run`` (the verdict text is part
of the experiment's registered definition, so quick- and full-profile
campaigns produce the same table as long as every check passes).

Usage::

    PYTHONPATH=src python -m repro experiments run --all [--quick]
    PYTHONPATH=src python tools/render_experiments.py           # rewrite
    PYTHONPATH=src python tools/render_experiments.py --check   # verify

``--check`` exits non-zero (without writing) when the table on disk does
not match the reports -- the CI gate against verdict regressions and
hand-edits.  Only experiments indexed ``EXP-*`` appear in the table; the
extensions (``EXT-*``) have reports too but are documented in prose.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Mapping, Sequence

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_EXPERIMENTS_FILE = REPO / "EXPERIMENTS.md"
#: Relative to the cwd, exactly like the CLI's default report dir -- a
#: campaign run and this tool invoked from the same directory always
#: agree on where the reports live.
DEFAULT_REPORT_DIR = pathlib.Path(".repro_cache") / "experiments"

BEGIN_MARKER = "<!-- BEGIN GENERATED VERDICT TABLE -->"
END_MARKER = "<!-- END GENERATED VERDICT TABLE -->"


def load_reports(directory: pathlib.Path) -> list[dict[str, Any]]:
    if not directory.is_dir():
        raise SystemExit(
            f"no report directory {directory}; run "
            "`python -m repro experiments run --all` first"
        )
    reports = []
    for path in sorted(directory.glob("*.json")):
        with open(path, encoding="utf-8") as handle:
            reports.append(json.load(handle))
    if not reports:
        raise SystemExit(f"no report files in {directory}")
    return reports


def build_table(reports: Sequence[Mapping[str, Any]]) -> str:
    """The markdown verdict table for the ``EXP-*`` reports, sorted by id."""
    rows = sorted(
        (report for report in reports if report["exp_id"].startswith("EXP-")),
        key=lambda report: report["exp_id"],
    )
    if not rows:
        raise SystemExit("no EXP-* reports to tabulate")
    lines = ["| ID | Claim | Verdict |", "|---|---|---|"]
    for report in rows:
        lines.append(
            f"| {report['exp_id']} | {report['claim']} | {report['verdict']} |"
        )
    return "\n".join(lines)


def splice(text: str, table: str) -> str:
    """Replace the marked table block of ``text`` with ``table``."""
    try:
        head, rest = text.split(BEGIN_MARKER, 1)
        _, tail = rest.split(END_MARKER, 1)
    except ValueError:
        raise SystemExit(
            f"EXPERIMENTS.md is missing the {BEGIN_MARKER!r} / "
            f"{END_MARKER!r} markers"
        ) from None
    return f"{head}{BEGIN_MARKER}\n{table}\n{END_MARKER}{tail}"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--reports", default=str(DEFAULT_REPORT_DIR),
        help=f"report directory (default {DEFAULT_REPORT_DIR})",
    )
    parser.add_argument(
        "--experiments-file", default=str(DEFAULT_EXPERIMENTS_FILE),
        help=f"file holding the verdict table (default "
             f"{DEFAULT_EXPERIMENTS_FILE})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify the table matches the reports instead of rewriting",
    )
    args = parser.parse_args(argv)

    table = build_table(load_reports(pathlib.Path(args.reports)))
    experiments_file = pathlib.Path(args.experiments_file)
    current = experiments_file.read_text(encoding="utf-8")
    updated = splice(current, table)
    if args.check:
        if current != updated:
            print(
                f"{experiments_file} verdict table does not match the "
                f"reports in {args.reports}",
                file=sys.stderr,
            )
            return 1
        print(f"{experiments_file}: verdict table matches the reports")
        return 0
    if current == updated:
        print(f"{experiments_file}: verdict table already current")
        return 0
    experiments_file.write_text(updated, encoding="utf-8")
    print(f"{experiments_file}: verdict table rewritten")
    return 0


if __name__ == "__main__":
    sys.exit(main())
