"""CI smoke check for the CLI and the internal-deprecation policy.

Eight gates, all dependency-free (run with ``python tools/ci_smoke.py``):

1. ``python -m repro --help`` exits 0 in a fresh subprocess;
2. one tiny ``sweep --json`` (and ``run --json``) on a 6-node ring runs
   end-to-end in-process and prints parseable canonical JSON;
3. ``experiments list --json`` exposes the registered experiment
   catalog (all twelve EXP-NN ids);
4. ``cluster status --json`` answers with the expected payload shape
   (an empty cluster root is a valid, reportable state);
5. ``lint --json`` reports a clean tree under every registered
   invariant rule (the shipped source must stay ``repro lint`` green);
6. ``engines --json`` lists the full simulation-engine ladder
   (reactive, compiled, batch, cube) with a sane ``auto`` resolution;
7. the run-store warehouse round-trips: the same sweep cached under the
   jsonl and sqlite backends reports identically (modulo the
   non-canonical timing section), ``query`` answers the worst-case
   lookup from the warehouse without re-sweeping, and ``cache clear``
   reports per-backend removal counts;
8. no ``DeprecationWarning`` originates from inside ``src/repro`` while
   doing so -- deprecation shims, if any ever exist, are for external
   callers only; package-internal code must stay on the current API.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import subprocess
import sys
import warnings
from contextlib import redirect_stdout

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_help() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        fail(f"--help exited {proc.returncode}: {proc.stderr}")
    for command in ("run", "sweep", "certify", "explore", "engines",
                    "tradeoff", "experiments", "telemetry", "cluster",
                    "query", "cache"):
        if command not in proc.stdout:
            fail(f"--help does not mention the {command!r} command")
    print("help: OK")


def run_cli_capturing(argv: list[str]) -> tuple[str, list[warnings.WarningMessage]]:
    buffer = io.StringIO()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        # Imported inside the recorder so the first call also catches
        # import-time deprecation warnings raised inside src/repro.
        from repro.cli import main

        with redirect_stdout(buffer):
            code = main(argv)
    if code != 0:
        fail(f"{argv} exited {code}")
    return buffer.getvalue(), caught


def internal_deprecations(
    caught: list[warnings.WarningMessage],
) -> list[warnings.WarningMessage]:
    marker = str(SRC / "repro")
    return [
        w
        for w in caught
        if issubclass(w.category, DeprecationWarning)
        and str(pathlib.Path(w.filename).resolve()).startswith(marker)
    ]


def check_json_commands() -> None:
    sys.path.insert(0, str(SRC))

    sweep_out, sweep_warnings = run_cli_capturing(
        ["sweep", "--graph", "ring", "--size", "6", "--algorithm", "fast-sim",
         "--label-space", "4", "--no-cache", "--json"]
    )
    payload = json.loads(sweep_out)
    if payload["scenario"]["graph"] != {"family": "ring", "params": {"n": 6}}:
        fail(f"unexpected sweep scenario: {payload['scenario']}")
    if payload["result"]["max_time"] > payload["result"]["time_bound"]:
        fail("measured time exceeds the paper bound")
    print("sweep --json: OK")

    run_out, run_warnings = run_cli_capturing(
        ["run", "--json", "--size", "6", "--label-space", "4",
         "--labels", "1", "3", "--starts", "0", "3"]
    )
    if json.loads(run_out)["result"]["met"] is not True:
        fail("run --json reported no meeting")
    print("run --json: OK")

    list_out, list_warnings = run_cli_capturing(["experiments", "list", "--json"])
    registered = {item["id"] for item in json.loads(list_out)["experiments"]}
    missing = {f"exp{n:02d}" for n in range(1, 13)} - registered
    if missing:
        fail(f"experiments list is missing {sorted(missing)}")
    print("experiments list --json: OK")

    status_out, status_warnings = run_cli_capturing(
        ["cluster", "status", "--root", "ci-smoke-empty-cluster", "--json"]
    )
    status = json.loads(status_out)
    if sorted(status) != ["root", "runs"] or status["runs"] != []:
        fail(f"unexpected cluster status payload: {status}")
    print("cluster status --json: OK")

    lint_out, lint_warnings = run_cli_capturing(
        ["lint", "--json", "--no-cache", str(SRC)]
    )
    lint = json.loads(lint_out)
    if lint["result"]["ok"] is not True or lint["result"]["findings"] != []:
        fail(f"repro lint found violations: {lint['result']['findings']}")
    if len(lint["lint"]["rules"]) < 9:
        fail(f"lint rule registry shrank: {lint['lint']['rules']}")
    print("lint --json: OK")

    engines_out, engines_warnings = run_cli_capturing(["engines", "--json"])
    ladder = json.loads(engines_out)
    listed = [row["engine"] for row in ladder["engines"]]
    if listed != ["reactive", "compiled", "batch", "cube"]:
        fail(f"unexpected engine ladder: {listed}")
    if ladder["auto"]["oblivious"] not in ("cube", "compiled"):
        fail(f"unexpected auto resolution: {ladder['auto']}")
    print("engines --json: OK")

    offenders = internal_deprecations(
        sweep_warnings + run_warnings + list_warnings + status_warnings
        + lint_warnings + engines_warnings
    )
    if offenders:
        lines = "\n".join(
            f"  {w.filename}:{w.lineno}: {w.message}" for w in offenders
        )
        fail(f"DeprecationWarning raised from inside src/repro:\n{lines}")
    print("no internal deprecation warnings: OK")


def _without_timing(payload):
    """Drop the non-canonical ``timing`` sections before comparison."""
    if isinstance(payload, dict):
        return {
            key: _without_timing(value)
            for key, value in payload.items()
            if key != "timing"
        }
    if isinstance(payload, list):
        return [_without_timing(item) for item in payload]
    return payload


def check_warehouse() -> None:
    cache_dir = "ci-smoke-warehouse"
    sweep_args = ["sweep", "--graph", "ring", "--size", "6",
                  "--algorithm", "fast-sim", "--label-space", "4",
                  "--cache-dir", cache_dir, "--json"]
    jsonl_out, jsonl_warnings = run_cli_capturing(sweep_args)
    sqlite_out, sqlite_warnings = run_cli_capturing(
        sweep_args + ["--cache-backend", "sqlite"]
    )
    jsonl_payload = _without_timing(json.loads(jsonl_out))
    sqlite_payload = _without_timing(json.loads(sqlite_out))
    if jsonl_payload != sqlite_payload:
        fail("sweep reports differ between the jsonl and sqlite backends")
    print("sweep across both store backends: OK")

    query_out, query_warnings = run_cli_capturing(
        ["query", "--json", "--algorithm", "fast-sim",
         "--cache-dir", cache_dir, "--cache-backend", "sqlite"]
    )
    answer = json.loads(query_out)
    if answer["result"]["count"] < 1:
        fail("query found no stored runs in the warehouse")
    entry = answer["result"]["runs"][0]
    if entry["algorithm"] != "fast-sim":
        fail(f"query returned a foreign algorithm: {entry['algorithm']}")
    worst_time = entry["result"]["worst_time"]["time"]
    if worst_time != jsonl_payload["result"]["max_time"]:
        fail(
            f"warehouse worst time {worst_time} does not match the "
            f"sweep's {jsonl_payload['result']['max_time']}"
        )
    print("query --json: OK")

    clear_out, clear_warnings = run_cli_capturing(
        ["cache", "clear", "--json", "--cache-dir", cache_dir]
    )
    removed = json.loads(clear_out)["removed"]
    if removed != {"jsonl": 1, "sqlite": 1}:
        fail(f"unexpected cache clear counts: {removed}")
    print("cache clear --json: OK")

    offenders = internal_deprecations(
        jsonl_warnings + sqlite_warnings + query_warnings + clear_warnings
    )
    if offenders:
        lines = "\n".join(
            f"  {w.filename}:{w.lineno}: {w.message}" for w in offenders
        )
        fail(f"DeprecationWarning raised from inside src/repro:\n{lines}")


def main() -> None:
    check_help()
    check_json_commands()
    check_warehouse()
    print("smoke: all checks passed")


if __name__ == "__main__":
    main()
